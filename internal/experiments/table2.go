package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// largeSpec is one Table 2 workload: a huge-dimension generator whose
// full correlation matrix can never be materialized, evaluated by exact
// second-pass correlation of the reported pairs only.
type largeSpec struct {
	name      string
	dim       int
	alpha     float64
	newSource func(n int) (stream.Source, error)
}

// table2Specs builds the URL-like and DNA-k-mer workloads at a size
// scaled from opt (the paper: d = 10^6 / 1.7·10^7, here laptop-sized by
// default and configurable upward in cmd/experiments).
func table2Specs(opt Options) []largeSpec {
	urlDim := opt.Scale.Dim * 10
	if urlDim < 600 {
		urlDim = 600
	}
	urlCfg := dataset.DefaultURLConfig(urlDim, opt.Seed)
	nURLSig := len(urlCfg.SignalPairs())
	pURL := float64(urlDim) * float64(urlDim-1) / 2

	dnaCfg := dataset.DNAConfig{
		K: 8, ReadLen: 100, Motifs: 40, MotifLen: 15, MotifProb: 0.5, Seed: 42,
	}
	nDNASig := len(dnaCfg.SignalPairs())
	pDNA := float64(dnaCfg.Dim()) * float64(dnaCfg.Dim()-1) / 2

	return []largeSpec{
		{
			name: "URL", dim: urlDim, alpha: float64(nURLSig) / pURL,
			newSource: func(n int) (stream.Source, error) { return urlCfg.NewSource(n) },
		},
		{
			name: "DNA", dim: dnaCfg.Dim(), alpha: float64(nDNASig) / pDNA,
			newSource: func(n int) (stream.Source, error) { return dnaCfg.NewSource(n) },
		},
	}
}

// Table2Row is one (dataset, memory) cell pair of Table 2.
type Table2Row struct {
	Dataset  string
	K, R     int
	MemBytes int
	// MeanTopCorr maps engine name → mean exact correlation of its top
	// reported pairs.
	MeanTopCorr map[string]float64
	TopK        int
}

// Table2Result collects the rows.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces Table 2: on trillion-scale-structured workloads
// (URL-like, DNA k-mer), ASCS finds top pairs with near-one mean
// correlation at a memory budget where vanilla CS degrades badly, and
// the two converge once memory is plentiful.
func Table2(opt Options, w io.Writer) (Table2Result, error) {
	var res Table2Result
	T := opt.Scale.Samples
	topK := 200
	for _, spec := range table2Specs(opt) {
		// Standardize once; reuse the identical sample stream for every
		// engine and memory setting.
		raw, err := spec.newSource(T)
		if err != nil {
			return res, err
		}
		st, err := stream.NewStandardizer(raw, maxInt(T/10, 50), false)
		if err != nil {
			return res, err
		}
		samples := stream.Drain(st)
		if len(samples) == 0 {
			return res, fmt.Errorf("experiments: %s produced no samples", spec.name)
		}

		// Memory sweep: ×1, ×8, ×64 of a deliberately tight base, echoing
		// the paper's R ∈ {10^7, 10^8, 10^9} progression for DNA.
		baseR := 1 << 10
		for _, mult := range []int{1, 8, 64} {
			r := baseR * mult
			row := Table2Row{
				Dataset: spec.name, K: opt.K, R: r,
				MemBytes:    opt.K * r * 8,
				MeanTopCorr: map[string]float64{},
				TopK:        topK,
			}
			for _, build := range []func() (sketchapi.Ingestor, error){
				func() (sketchapi.Ingestor, error) { return newCS(len(samples), opt.K, r, uint64(opt.Seed)) },
				func() (sketchapi.Ingestor, error) {
					eng, _, err := engineSetup(samples, spec.dim, spec.alpha, opt.K, r, uint64(opt.Seed))
					return eng, err
				},
			} {
				eng, err := build()
				if err != nil {
					return res, err
				}
				est, _, err := runEngine(samples, spec.dim, eng, 4*topK)
				if err != nil {
					return res, err
				}
				top, err := est.Top(topK)
				if err != nil {
					return res, err
				}
				var prs []dataset.PairRef
				for _, pe := range top {
					prs = append(prs, dataset.PairRef{A: pe.A, B: pe.B})
				}
				fresh, err := spec.newSource(T)
				if err != nil {
					return res, err
				}
				exact, err := eval.ExactPairCorr(fresh, prs)
				if err != nil {
					return res, err
				}
				mean := 0.0
				for _, pr := range prs {
					mean += exact[pr]
				}
				mean /= float64(len(prs))
				row.MeanTopCorr[eng.Name()] = mean
			}
			res.Rows = append(res.Rows, row)
		}
	}
	fmt.Fprintf(w, "Table 2: mean exact correlation of top %d reported pairs\n", topK)
	fmt.Fprintf(w, "%-6s %-3s %-8s %-10s %-8s %-8s\n", "data", "K", "R", "memory", "CS", "ASCS")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-6s %-3d %-8d %-10s %-8.3f %-8.3f\n",
			row.Dataset, row.K, row.R, fmtBytes(row.MemBytes),
			row.MeanTopCorr["CS"], row.MeanTopCorr["ASCS"])
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
