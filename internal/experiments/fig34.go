package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// replicateCovEntries reproduces the §6.2 experimental device: many
// replicate datasets are drawn (fresh simulations, or bootstrap
// resamples of the gisette-like base), the empirical covariance entries
// X̄_i^{(t)} are computed on the first t samples of each, and the matrix
// of (replicate × entry) values is returned together with the signal
// labels of the selected entries.
func replicateCovEntries(which string, d, t, reps int, seed int64) (vals [][]float64, isSignal []bool, err error) {
	sc := dataset.Scale{Dim: d, Samples: t}
	var base *dataset.Dataset
	if which == "gisette" {
		// One larger base, bootstrapped per replicate (§6.2).
		base = dataset.GisetteLike(dataset.Scale{Dim: d, Samples: 4 * t}, seed)
	}
	p := d * (d - 1) / 2
	vals = make([][]float64, reps)
	for r := 0; r < reps; r++ {
		var ds *dataset.Dataset
		if which == "gisette" {
			ds = base.Bootstrap(t, seed+int64(r)+1)
		} else {
			ds = dataset.Simulation(sc.Dim, sc.Samples, 0.005, seed+int64(r)+1)
		}
		cov, cerr := covEntriesOfRows(ds.Rows)
		if cerr != nil {
			return nil, nil, cerr
		}
		vals[r] = cov
	}
	// Signal labels from the ground truth of a reference instance.
	var ref *dataset.Dataset
	if which == "gisette" {
		ref = base
	} else {
		ref = dataset.Simulation(sc.Dim, sc.Samples, 0.005, seed+1)
	}
	corr, cerr := ref.Corr()
	if cerr != nil {
		return nil, nil, cerr
	}
	isSignal = make([]bool, p)
	k := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			isSignal[k] = math.Abs(corr.At(i, j)) >= 0.4
			k++
		}
	}
	return vals, isSignal, nil
}

// covEntriesOfRows computes the vectorized empirical covariance entries
// (population denominator, as X̄^{(t)} in §4) of the rows.
func covEntriesOfRows(rows [][]float64) ([]float64, error) {
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("experiments: need ≥ 2 rows")
	}
	d := len(rows[0])
	mean := make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	out := make([]float64, 0, d*(d-1)/2)
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			s := 0.0
			for _, r := range rows {
				s += (r[a] - mean[a]) * (r[b] - mean[b])
			}
			out = append(out, s/float64(n))
		}
	}
	return out, nil
}

// Fig3Result summarizes the independence check of Figure 3: the
// distribution of |correlation| between pairs of covariance entries
// across replicates.
type Fig3Result struct {
	// Hist is the histogram of |corr| over sampled entry pairs, per
	// dataset.
	Hist map[string]*stats.Histogram
	// MedianAbs is the median |corr| per dataset.
	MedianAbs map[string]float64
	// FracBelow reports the fraction of |corr| below 3/√reps (the
	// resolution limit of the replicate count) per dataset.
	FracBelow map[string]float64
}

// Fig3 reproduces Figure 3: covariance entries are (approximately)
// uncorrelated with each other, supporting the §6.1 independence
// assumption.
func Fig3(opt Options, w io.Writer) (Fig3Result, error) {
	res := Fig3Result{
		Hist:      map[string]*stats.Histogram{},
		MedianAbs: map[string]float64{},
		FracBelow: map[string]float64{},
	}
	const d, t = 40, 150
	rng := rand.New(rand.NewSource(opt.Seed))
	for _, which := range []string{"simulation", "gisette"} {
		vals, _, err := replicateCovEntries(which, d, t, opt.Reps, opt.Seed)
		if err != nil {
			return res, err
		}
		p := len(vals[0])
		nPairs := 1500
		hist := stats.NewHistogram(0, 1, 20)
		var absCorrs []float64
		xi := make([]float64, len(vals))
		xj := make([]float64, len(vals))
		for s := 0; s < nPairs; s++ {
			i := rng.Intn(p)
			j := rng.Intn(p)
			if i == j {
				continue
			}
			for r := range vals {
				xi[r] = vals[r][i]
				xj[r] = vals[r][j]
			}
			c := math.Abs(stats.Correlation(xi, xj))
			if math.IsNaN(c) {
				continue
			}
			hist.Add(c)
			absCorrs = append(absCorrs, c)
		}
		res.Hist[which] = hist
		res.MedianAbs[which] = stats.Median(absCorrs)
		limit := 3 / math.Sqrt(float64(opt.Reps))
		below := 0
		for _, c := range absCorrs {
			if c < limit {
				below++
			}
		}
		res.FracBelow[which] = float64(below) / float64(len(absCorrs))
		fmt.Fprintf(w, "Figure 3 (%s): |corr| between covariance entries over %d replicates\n", which, opt.Reps)
		fmt.Fprintf(w, "  median |corr| = %.4f; fraction below noise floor (%.3f) = %.3f\n",
			res.MedianAbs[which], limit, res.FracBelow[which])
	}
	return res, nil
}

// Fig4Result summarizes the Figure 4 QQ-plots: the maximum central-band
// deviation of standardized covariance entries from the standard normal,
// per dataset and entry kind.
type Fig4Result struct {
	// Deviations maps "dataset/kind" (kind ∈ signal, noise) to the QQ
	// deviations of the sampled entries.
	Deviations map[string][]float64
}

// Fig4 reproduces Figure 4: the distribution of an empirical covariance
// entry across replicates is well approximated by a Gaussian (the §6.1
// normality assumption), for signal and noise entries alike.
func Fig4(opt Options, w io.Writer) (Fig4Result, error) {
	res := Fig4Result{Deviations: map[string][]float64{}}
	const d, t = 40, 150
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	for _, which := range []string{"simulation", "gisette"} {
		vals, isSignal, err := replicateCovEntries(which, d, t, opt.Reps, opt.Seed)
		if err != nil {
			return res, err
		}
		var sigIdx, noiseIdx []int
		for i, s := range isSignal {
			if s {
				sigIdx = append(sigIdx, i)
			} else {
				noiseIdx = append(noiseIdx, i)
			}
		}
		pick := func(idx []int, n int) []int {
			if len(idx) == 0 {
				return nil
			}
			out := make([]int, 0, n)
			for len(out) < n {
				out = append(out, idx[rng.Intn(len(idx))])
			}
			return out
		}
		series := make([]float64, len(vals))
		for _, kind := range []struct {
			name string
			idx  []int
		}{{"signal", pick(sigIdx, 2)}, {"noise", pick(noiseIdx, 2)}} {
			for _, entry := range kind.idx {
				for r := range vals {
					series[r] = vals[r][entry]
				}
				pts := stats.QQNormal(series)
				dev := stats.QQDeviation(pts, 0.05, 0.95)
				key := which + "/" + kind.name
				res.Deviations[key] = append(res.Deviations[key], dev)
				fmt.Fprintf(w, "Figure 4 (%s, %s entry %d): max QQ deviation %.3f over %d replicates\n",
					which, kind.name, entry, dev, opt.Reps)
			}
		}
	}
	return res, nil
}
