package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/stats"
)

// Fig1Result holds, per dataset, the empirical CDF of |correlation| over
// all off-diagonal pairs — the curves of Figure 1.
type Fig1Result struct {
	Thresholds []float64
	// Curves maps dataset name → fraction of |corr| ≤ threshold.
	Curves map[string][]float64
}

// fig1Thresholds are the x-axis grid of the Figure 1 curves.
var fig1Thresholds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}

// Fig1 reproduces Figure 1: the distribution of correlations of four
// high-dimensional datasets, demonstrating sparsity (most |corr| ≈ 0).
func Fig1(opt Options, w io.Writer) (Fig1Result, error) {
	res := Fig1Result{Thresholds: fig1Thresholds, Curves: map[string][]float64{}}
	names := []string{"gisette", "epsilon", "cifar10", "rcv1"}
	for _, name := range names {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		corr, err := ds.Corr()
		if err != nil {
			return res, err
		}
		abs := stats.Abs(corr.OffDiagonal())
		res.Curves[name] = stats.EmpiricalCDF(abs, fig1Thresholds)
	}
	fmt.Fprintln(w, "Figure 1: empirical proportion of |correlation| ≤ x")
	fmt.Fprintf(w, "%-8s", "x")
	for _, name := range names {
		fmt.Fprintf(w, " %10s", name)
	}
	fmt.Fprintln(w)
	for i, th := range fig1Thresholds {
		fmt.Fprintf(w, "%-8.2f", th)
		for _, name := range names {
			fmt.Fprintf(w, " %10.4f", res.Curves[name][i])
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

// Fig2Result holds, per dataset, the empirical CDF of |mean/std| over
// features — the curves of Figure 2.
type Fig2Result struct {
	Thresholds []float64
	Curves     map[string][]float64
}

var fig2Thresholds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0}

// Fig2 reproduces Figure 2: the distribution of |mean/std| per feature,
// motivating the §5 approximation Cov(Ya,Yb) ≈ E[YaYb] after
// standardization (most features have negligible mean relative to their
// standard deviation).
func Fig2(opt Options, w io.Writer) (Fig2Result, error) {
	res := Fig2Result{Thresholds: fig2Thresholds, Curves: map[string][]float64{}}
	names := []string{"gisette", "epsilon", "cifar10", "rcv1"}
	for _, name := range names {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		means := matrix.FeatureMeans(ds.Rows)
		stds := matrix.FeatureStds(ds.Rows)
		ratios := make([]float64, 0, len(means))
		for j := range means {
			if stds[j] == 0 {
				continue
			}
			ratios = append(ratios, math.Abs(means[j]/stds[j]))
		}
		res.Curves[name] = stats.EmpiricalCDF(ratios, fig2Thresholds)
	}
	fmt.Fprintln(w, "Figure 2: empirical proportion of |mean/std| ≤ x")
	fmt.Fprintf(w, "%-8s", "x")
	for _, name := range names {
		fmt.Fprintf(w, " %10s", name)
	}
	fmt.Fprintln(w)
	for i, th := range fig2Thresholds {
		fmt.Fprintf(w, "%-8.3f", th)
		for _, name := range names {
			fmt.Fprintf(w, " %10.4f", res.Curves[name][i])
		}
		fmt.Fprintln(w)
	}
	return res, nil
}
