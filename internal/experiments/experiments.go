// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6.2, §7.3, §8), each printing the same rows or
// series the paper reports and returning structured results for tests
// and benchmarks. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/dataset"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// Options sizes and seeds an experiment run.
type Options struct {
	// Scale sizes generated datasets.
	Scale dataset.Scale
	// Seed drives all randomness.
	Seed int64
	// Reps is the replicate count for the bootstrap experiments
	// (Figures 3-4, Table 1).
	Reps int
	// K is the number of hash tables (the paper uses 5 throughout §8).
	K int
	// RDivisor sets the sketch range as R = p/RDivisor (the paper's
	// "memory = 20% of unique entries" setting is RDivisor·K = 20·...;
	// §8.3 uses R = p/25 per table at K=5 — here R = p/RDivisor).
	RDivisor int
}

// DefaultOptions returns the small-scale configuration used by tests.
func DefaultOptions() Options {
	return Options{
		Scale:    dataset.SmallScale(),
		Seed:     42,
		Reps:     60,
		K:        5,
		RDivisor: 25,
	}
}

// Runner is the signature of every experiment driver.
type Runner func(Options, io.Writer) error

// Registry maps experiment ids (fig1..fig6, table1..table6) to drivers.
var Registry = map[string]Runner{
	"fig1":   func(o Options, w io.Writer) error { _, err := Fig1(o, w); return err },
	"fig2":   func(o Options, w io.Writer) error { _, err := Fig2(o, w); return err },
	"fig3":   func(o Options, w io.Writer) error { _, err := Fig3(o, w); return err },
	"fig4":   func(o Options, w io.Writer) error { _, err := Fig4(o, w); return err },
	"fig5":   func(o Options, w io.Writer) error { _, err := Fig5(o, w); return err },
	"fig6":   func(o Options, w io.Writer) error { _, err := Fig6(o, w); return err },
	"fig6f":  func(o Options, w io.Writer) error { _, err := Fig6Alpha(o, w); return err },
	"table1": func(o Options, w io.Writer) error { _, err := Table1(o, w); return err },
	"table2": func(o Options, w io.Writer) error { _, err := Table2(o, w); return err },
	"table3": func(o Options, w io.Writer) error { _, err := Table3(o, w); return err },
	"table4": func(o Options, w io.Writer) error { _, err := Table4(o, w); return err },
	"table5": func(o Options, w io.Writer) error { _, err := Table5(o, w); return err },
	"table6": func(o Options, w io.Writer) error { _, err := Table6(o, w); return err },

	// Ablation studies for the design choices DESIGN.md calls out.
	"ablation-schedule": func(o Options, w io.Writer) error { _, err := AblationSchedule(o, w); return err },
	"ablation-gate":     func(o Options, w io.Writer) error { _, err := AblationGate(o, w); return err },
	"ablation-hash":     func(o Options, w io.Writer) error { _, err := AblationHash(o, w); return err },
	"ablation-pagh":     func(o Options, w io.Writer) error { _, err := AblationPagh(o, w); return err },
}

// Names returns the registered experiment ids in stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run dispatches one experiment by id.
func Run(name string, opt Options, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(opt, w)
}

// standardized loads a dataset and returns its samples standardized to
// unit feature variance (scale-only, fitted on a 5% prefix as §8.3
// estimates μ̂ "using the first 5% of the data"), so the second-moment
// engine estimates correlations.
func standardized(ds *dataset.Dataset) ([]stream.Sample, error) {
	fitN := ds.Samples() / 20
	if fitN < 2 {
		fitN = 2
	}
	st, err := stream.NewStandardizer(ds.Source(), fitN, false)
	if err != nil {
		return nil, err
	}
	return stream.Drain(st), nil
}

// engineSetup derives the §8.1 hyper-parameters for a dataset stream and
// builds an ASCS engine plus its schedule. The warm-up CS runs on the
// first 5% of samples; u is the (1−α) percentile of its estimates, σ the
// RMS increment, τ(T0) = 1e-4 (correlation scale).
func engineSetup(samples []stream.Sample, d int, alpha float64, K, R int, seed uint64) (*core.Engine, core.Params, error) {
	T := len(samples)
	// §8.1 explores the first 5% of the stream; a floor keeps the pair
	// estimates meaningful for sparse data at reduced scale (a rare pair
	// must have a chance to co-occur more than once during warm-up, or
	// single-co-occurrence flukes dominate the top percentiles).
	warmN := T / 20
	if warmN < 400 {
		warmN = 400
	}
	if warmN > T/2 {
		warmN = T / 2
	}
	if warmN < 10 {
		warmN = 10
	}
	// The warm-up sketch is transient (discarded after exploration), so
	// it need not honor the run's memory budget: a too-tight R would
	// bury the μ̂ census in collision noise and corrupt u.
	rWarm := R
	if rWarm < 1<<16 {
		rWarm = 1 << 16
	}
	w, err := covstream.Warmup(stream.NewSliceSource(samples, d), warmN,
		countsketch.Config{Tables: K, Range: rWarm, Seed: seed ^ 0x77}, covstream.SecondMoment, 2_000_000, int64(seed))
	if err != nil {
		return nil, core.Params{}, err
	}
	// §7.2 wants a lower bound on signal strength; shave the noisy
	// warm-up percentile (Figure 6 shows ASCS is robust to under-stating
	// u, while over-stating it can gate genuine signals out).
	u := 0.75 * w.SignalStrength(alpha)
	tau0 := 1e-4
	if u < 10*tau0 {
		// Degenerate warm-up (weak or noisy prefix): fall back to a small
		// but workable signal floor.
		u = 10 * tau0
	}
	params := core.Params{
		P: pairs.Count(d), T: T, K: K, R: R,
		U: u, Sigma: w.Sigma, Alpha: alpha,
		Tau0: tau0, Gamma: 30,
	}
	params = params.WithSuggestedDeltas()
	eng, _, err := core.NewAuto(params, seed, true)
	if err != nil {
		return nil, core.Params{}, err
	}
	return eng, params, nil
}

// runEngine replays samples through an engine via the covariance
// streamer and returns the wall-clock sketching time.
func runEngine(samples []stream.Sample, d int, eng sketchapi.Ingestor, track int) (*covstream.Estimator, time.Duration, error) {
	est, err := covstream.New(covstream.Config{
		Dim: d, T: len(samples), Engine: eng,
		Mode: covstream.SecondMoment, TrackCandidates: track,
	})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := est.Run(stream.NewSliceSource(samples, d)); err != nil {
		return nil, 0, err
	}
	return est, time.Since(start), nil
}

// newCS builds the vanilla-CS engine.
func newCS(T, K, R int, seed uint64) (sketchapi.Ingestor, error) {
	return countsketch.NewMeanSketch(countsketch.Config{Tables: K, Range: R, Seed: seed}, T)
}

// newASketch builds the Augmented Sketch baseline with a filter sized at
// 1% of the sketch cells (memory parity is achieved by shrinking R).
func newASketch(T, K, R int, seed uint64) (sketchapi.Ingestor, error) {
	filterCap := K * R / 100
	if filterCap < 8 {
		filterCap = 8
	}
	// Two floats (key+value) per filter slot come out of the budget.
	rAdj := R - 2*filterCap/K
	if rAdj < 2 {
		rAdj = 2
	}
	return baselines.NewASketch(countsketch.Config{Tables: K, Range: rAdj, Seed: seed}, T, filterCap)
}

// trueCorrOf adapts a dataset's ground-truth correlation into a
// key-scored function.
func trueCorrOf(ds *dataset.Dataset) (func(uint64) float64, error) {
	corr, err := ds.Corr()
	if err != nil {
		return nil, err
	}
	d := ds.Dim
	return func(key uint64) float64 {
		a, b := pairs.Decode(int64(key), d)
		return corr.At(a, b)
	}, nil
}

// absCorrOf is trueCorrOf with absolute values (ranking magnitude).
func absCorrOf(ds *dataset.Dataset) (func(uint64) float64, error) {
	f, err := trueCorrOf(ds)
	if err != nil {
		return nil, err
	}
	return func(key uint64) float64 {
		v := f(key)
		if v < 0 {
			return -v
		}
		return v
	}, nil
}

// allKeys enumerates the p pair keys of a d-dimensional dataset.
func allKeys(d int) []uint64 {
	p := pairs.Count(d)
	out := make([]uint64, p)
	for i := int64(0); i < p; i++ {
		out[i] = uint64(i)
	}
	return out
}
