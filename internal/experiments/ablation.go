package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/hashing"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// AblationRow is one variant's score in an ablation study.
type AblationRow struct {
	Variant     string
	MeanTopCorr float64
	Note        string
}

// AblationResult collects the rows of one study.
type AblationResult struct {
	Study string
	Rows  []AblationRow
}

// Get returns the row for a variant.
func (r AblationResult) Get(variant string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Variant == variant {
			return row, true
		}
	}
	return AblationRow{}, false
}

func (r AblationResult) print(w io.Writer) {
	fmt.Fprintf(w, "Ablation: %s\n", r.Study)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-22s %8.3f  %s\n", row.Variant, row.MeanTopCorr, row.Note)
	}
}

// ablationBench prepares the shared gisette-like fixture: standardized
// samples, solved parameters, ground truth scorer and the evaluation
// size (top 0.1·αp as in Table 5). The sketch is sized at half the
// Table 4 budget: the design choices under study only bind when
// collisions actually hurt.
func ablationBench(opt Options) (samples []stream.Sample, d int, params core.Params, truth func(uint64) float64, topK int, err error) {
	ds := dataset.GisetteLike(opt.Scale, opt.Seed)
	raw, err := standardized(ds)
	if err != nil {
		return nil, 0, core.Params{}, nil, 0, err
	}
	d = ds.Dim
	p := pairs.Count(d)
	r := int(p) / (2 * opt.RDivisor)
	if r < 16 {
		r = 16
	}
	_, prm, err := engineSetup(raw, d, ds.Alpha, opt.K, r, uint64(opt.Seed))
	if err != nil {
		return nil, 0, core.Params{}, nil, 0, err
	}
	truth, err = trueCorrOf(ds)
	if err != nil {
		return nil, 0, core.Params{}, nil, 0, err
	}
	topK = int(0.1 * ds.Alpha * float64(p))
	if topK < 1 {
		topK = 1
	}
	return raw, d, prm, truth, topK, nil
}

// AblationSchedule compares threshold schedules at fixed memory on the
// gisette-like dataset: vanilla CS (no gate), a flat gate at τ(T0), the
// solved linear schedule (the paper's design), and an aggressive 2×
// slope. The paper argues (§6.5, law of the iterated logarithm) that the
// linear rise is close to optimal: flat admits too much noise, steeper
// slopes drop signals.
func AblationSchedule(opt Options, w io.Writer) (AblationResult, error) {
	res := AblationResult{Study: "threshold schedule (gisette-like, top 0.1·αp mean corr)"}
	samples, d, prm, truth, topK, err := ablationBench(opt)
	if err != nil {
		return res, err
	}
	hp, err := prm.Solve()
	if err != nil {
		return res, err
	}
	variants := []struct {
		name  string
		build func() (sketchapi.Ingestor, error)
		note  string
	}{
		{"CS", func() (sketchapi.Ingestor, error) {
			return newCS(len(samples), prm.K, prm.R, uint64(opt.Seed))
		}, "no gate"},
		{"ASCS-flat", func() (sketchapi.Ingestor, error) {
			flat := hp
			flat.Theta = 0
			return core.NewEngine(countsketch.Config{Tables: prm.K, Range: prm.R, Seed: uint64(opt.Seed)}, flat, true)
		}, "gate frozen at tau0"},
		{"ASCS-linear", func() (sketchapi.Ingestor, error) {
			return core.NewEngine(countsketch.Config{Tables: prm.K, Range: prm.R, Seed: uint64(opt.Seed)}, hp, true)
		}, fmt.Sprintf("solved theta=%.3f", hp.Theta)},
		{"ASCS-steep", func() (sketchapi.Ingestor, error) {
			steep := hp
			steep.Theta = 2 * hp.Theta
			return core.NewEngine(countsketch.Config{Tables: prm.K, Range: prm.R, Seed: uint64(opt.Seed)}, steep, true)
		}, "2x solved slope"},
	}
	for _, v := range variants {
		eng, err := v.build()
		if err != nil {
			return res, err
		}
		est, _, err := runEngine(samples, d, eng, 0)
		if err != nil {
			return res, err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     v.name,
			MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
			Note:        v.note,
		})
	}
	res.print(w)
	return res, nil
}

// AblationGate compares the two-sided |μ̂| ≥ τ gate (Theorems 1–2) with
// the one-sided μ̂ ≥ τ gate (Algorithm 2 as printed) on data whose
// signals are positive correlations; the two-sided gate also protects
// negative signals and costs nothing here.
func AblationGate(opt Options, w io.Writer) (AblationResult, error) {
	res := AblationResult{Study: "gate sidedness (gisette-like, top 0.1·αp mean corr)"}
	samples, d, prm, truth, topK, err := ablationBench(opt)
	if err != nil {
		return res, err
	}
	hp, err := prm.Solve()
	if err != nil {
		return res, err
	}
	for _, v := range []struct {
		name     string
		absolute bool
	}{{"two-sided", true}, {"one-sided", false}} {
		eng, err := core.NewEngine(countsketch.Config{Tables: prm.K, Range: prm.R, Seed: uint64(opt.Seed)}, hp, v.absolute)
		if err != nil {
			return res, err
		}
		est, _, err := runEngine(samples, d, eng, 0)
		if err != nil {
			return res, err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     v.name,
			MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
		})
	}
	res.print(w)
	return res, nil
}

// AblationHash compares hash families under vanilla CS at fixed memory:
// the mixing family (default), 2-wise and 4-wise independent polynomial
// hashing, and tabulation. The Count Sketch analysis only needs pairwise
// independence, so all families should score alike — this guards the
// default against a silent quality regression.
func AblationHash(opt Options, w io.Writer) (AblationResult, error) {
	res := AblationResult{Study: "hash family (gisette-like, CS, top 0.1·αp mean corr)"}
	samples, d, prm, truth, topK, err := ablationBench(opt)
	if err != nil {
		return res, err
	}
	for _, kind := range []hashing.Kind{hashing.KindMix, hashing.KindPoly, hashing.KindPoly4, hashing.KindTabulation} {
		ms, err := countsketch.NewMeanSketch(countsketch.Config{
			Tables: prm.K, Range: prm.R, Seed: uint64(opt.Seed), Hash: kind,
		}, len(samples))
		if err != nil {
			return res, err
		}
		est, _, err := runEngine(samples, d, ms, 0)
		if err != nil {
			return res, err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant:     kind.String(),
			MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
		})
	}
	res.print(w)
	return res, nil
}
