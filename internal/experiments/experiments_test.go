package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// tinyOptions keeps unit-test runtime in seconds.
func tinyOptions() Options {
	return Options{
		Scale:    dataset.Scale{Dim: 100, Samples: 600},
		Seed:     42,
		Reps:     40,
		K:        5,
		RDivisor: 25,
	}
}

func TestRegistryDispatch(t *testing.T) {
	if err := Run("nope", tinyOptions(), io.Discard); err == nil {
		t.Error("unknown experiment should error")
	}
	if len(Names()) < 12 {
		t.Errorf("registry too small: %v", Names())
	}
	if err := Run("table3", tinyOptions(), io.Discard); err != nil {
		t.Errorf("table3: %v", err)
	}
}

func TestFig1CorrelationsAreSparse(t *testing.T) {
	res, err := Fig1(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range res.Curves {
		// CDF must be monotone and reach 1.
		prev := -1.0
		for _, v := range curve {
			if v < prev-1e-12 {
				t.Errorf("%s: CDF not monotone", name)
			}
			prev = v
		}
		if curve[len(curve)-1] < 1-1e-9 {
			t.Errorf("%s: CDF should reach 1 at |corr|=1, got %v", name, curve[len(curve)-1])
		}
		// The Figure 1 shape: most pairs weakly correlated. Threshold
		// index 4 is |corr| ≤ 0.2.
		if curve[4] < 0.7 {
			t.Errorf("%s: only %.2f of pairs below 0.2; spectrum not sparse", name, curve[4])
		}
		t.Logf("%s: P(|corr|≤0.2)=%.3f P(|corr|≤0.5)=%.3f", name, curve[4], curve[6])
	}
}

func TestFig2MeanStdMostlySmall(t *testing.T) {
	res, err := Fig2(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian-marginal datasets must have |mean/std| ≤ 0.1 for nearly
	// all features (the Figure 2 claim).
	for _, name := range []string{"gisette", "epsilon", "cifar10"} {
		curve := res.Curves[name]
		if curve[4] < 0.9 { // threshold 0.1
			t.Errorf("%s: only %.2f of features have |mean/std| ≤ 0.1", name, curve[4])
		}
		t.Logf("%s: P(|mean/std|≤0.1)=%.3f", name, curve[4])
	}
}

func TestFig3EntriesNearlyIndependent(t *testing.T) {
	opt := tinyOptions()
	var sb strings.Builder
	res, err := Fig3(opt, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, which := range []string{"simulation", "gisette"} {
		if res.MedianAbs[which] > 0.25 {
			t.Errorf("%s: median |corr| between entries = %v, want small", which, res.MedianAbs[which])
		}
		if res.FracBelow[which] < 0.7 {
			t.Errorf("%s: only %.2f of entry pairs below the noise floor", which, res.FracBelow[which])
		}
		t.Logf("%s: median=%.4f fracBelow=%.3f", which, res.MedianAbs[which], res.FracBelow[which])
	}
	if !strings.Contains(sb.String(), "Figure 3") {
		t.Error("missing output header")
	}
}

func TestFig4EntriesApproximatelyNormal(t *testing.T) {
	opt := tinyOptions()
	opt.Reps = 150 // QQ needs enough replicate points
	res, err := Fig4(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deviations) == 0 {
		t.Fatal("no deviations recorded")
	}
	for key, devs := range res.Deviations {
		for _, dev := range devs {
			if dev > 0.6 {
				t.Errorf("%s: QQ deviation %v too large for normality", key, dev)
			}
		}
		t.Logf("%s: deviations %v", key, devs)
	}
}

func TestTable1RealBelowTarget(t *testing.T) {
	opt := tinyOptions()
	opt.Reps = 80 // 4 replicate runs per cell
	res, err := Table1(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(res.Rows))
	}
	// Per-cell trial counts are small, so validate the way the paper's
	// table should be read: per cell with Monte-Carlo slack, and on
	// average across the grid without it.
	sums := map[string][2]float64{}
	for _, row := range res.Rows {
		if row.Real > row.Target+0.25 {
			t.Errorf("%s/%s: real %.3f far above target %.3f", row.Dataset, row.Kind, row.Real, row.Target)
		}
		key := row.Dataset + "/" + row.Kind
		s := sums[key]
		sums[key] = [2]float64{s[0] + row.Real, s[1] + row.Target}
		t.Logf("%s %s target=%.2f real=%.3f", row.Dataset, row.Kind, row.Target, row.Real)
	}
	for key, s := range sums {
		if s[0] > s[1]+0.05*6 {
			t.Errorf("%s: grid-mean real %.3f above grid-mean target %.3f", key, s[0]/6, s[1]/6)
		}
	}
}

func TestFig5MeasuredAboveBound(t *testing.T) {
	opt := tinyOptions()
	opt.Scale.Samples = 1500
	res, err := Fig5(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, which := range []string{"simulation", "gisette"} {
		series := res.Series[which]
		if len(series) < 3 {
			t.Fatalf("%s: only %d windows", which, len(series))
		}
		t0 := res.T0[which]
		checked := 0
		for _, pt := range series {
			if pt.T <= t0 || math.IsNaN(pt.Bound) {
				continue
			}
			checked++
			if !math.IsNaN(pt.Measured) && pt.Measured < 0.5*pt.Bound {
				t.Errorf("%s t=%d: measured %.3f below bound %.3f", which, pt.T, pt.Measured, pt.Bound)
			}
		}
		if checked == 0 {
			t.Errorf("%s: no sampling-period windows", which)
		}
		t.Logf("%s: %d windows checked, T0=%d", which, checked, t0)
	}
}

func TestTable2ASCSWinsAtTightMemory(t *testing.T) {
	opt := tinyOptions()
	res, err := Table2(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, ds := range []string{"URL", "DNA"} {
		found := 0
		bestGain := -1.0
		worstLoss := 0.0
		for _, row := range res.Rows {
			if row.Dataset != ds {
				continue
			}
			found++
			gain := row.MeanTopCorr["ASCS"] - row.MeanTopCorr["CS"]
			if gain > bestGain {
				bestGain = gain
			}
			if gain < worstLoss {
				worstLoss = gain
			}
			t.Logf("%s R=%d: CS=%.3f ASCS=%.3f", ds, row.R, row.MeanTopCorr["CS"], row.MeanTopCorr["ASCS"])
		}
		if found != 3 {
			t.Fatalf("%s: %d rows", ds, found)
		}
		// At this unit-test scale (T = 600) the stream is too short for
		// the sampling period to build much separation, so the testable
		// invariant is no-regression at every memory level; the win shape
		// (ASCS ≫ CS at tight memory) is asserted by the recorded
		// small-scale run in EXPERIMENTS.md, where T = 2000 gives the
		// gate room to work.
		if worstLoss < -0.05 {
			t.Errorf("%s: ASCS loses to CS by %.3f at some memory", ds, -worstLoss)
		}
		t.Logf("%s: best ASCS gain %.3f", ds, bestGain)
	}
}

func TestTable3Roster(t *testing.T) {
	res, err := Table3(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Dim != 100 || r.Samples != 600 || r.Alpha <= 0 || r.Pairs != 4950 || r.AvgNNZ <= 0 {
			t.Errorf("bad roster row: %+v", r)
		}
	}
}

func TestTable4ASCSCompetitive(t *testing.T) {
	opt := tinyOptions()
	res, err := Table4(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wins, total := 0, 0
	for _, name := range dataset.SmallNames() {
		cs, ok1 := res.Cell(name, "CS")
		ascs, ok2 := res.Cell(name, "ASCS")
		ask, ok3 := res.Cell(name, "ASketch")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing cells", name)
		}
		// Compare at the 0.1·αp fraction (index 2), the paper's headline
		// row for Table 5 as well.
		t.Logf("%s @0.1αp: CS=%.3f ASketch=%.3f ASCS=%.3f", name,
			cs.ByFraction[2], ask.ByFraction[2], ascs.ByFraction[2])
		total++
		if ascs.ByFraction[2] >= cs.ByFraction[2]-0.02 {
			wins++
		}
	}
	if wins < total-1 {
		t.Errorf("ASCS at-or-above CS on only %d/%d datasets", wins, total)
	}
}

func TestTable5BudgetAndKShape(t *testing.T) {
	opt := tinyOptions()
	res, err := Table5(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Accuracy must improve substantially from the smallest budget to
	// the largest, at K=6.
	budgets := []int{}
	seen := map[int]bool{}
	for _, row := range res.Rows {
		if !seen[row.BudgetFloats] {
			seen[row.BudgetFloats] = true
			budgets = append(budgets, row.BudgetFloats)
		}
	}
	small, _ := res.At(budgets[0], 6)
	large, _ := res.At(budgets[len(budgets)-1], 6)
	t.Logf("K=6: budget %d → %.3f, budget %d → %.3f", small.BudgetFloats, small.MeanTopCorr, large.BudgetFloats, large.MeanTopCorr)
	if large.MeanTopCorr < small.MeanTopCorr {
		t.Errorf("accuracy should not degrade with memory: %.3f vs %.3f", large.MeanTopCorr, small.MeanTopCorr)
	}
}

func TestTable6TimesComparable(t *testing.T) {
	opt := tinyOptions()
	res, err := Table6(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		cs, ascs := row.Seconds["CS"], row.Seconds["ASCS"]
		t.Logf("%s: CS=%.3fs ASCS=%.3fs", row.Dataset, cs, ascs)
		if cs <= 0 || ascs <= 0 {
			t.Errorf("%s: non-positive timing", row.Dataset)
		}
		if ascs > 6*cs+0.05 {
			t.Errorf("%s: ASCS %.3fs should be comparable to CS %.3fs", row.Dataset, ascs, cs)
		}
	}
}

func TestFig6ASCSCurvesAboveCS(t *testing.T) {
	opt := tinyOptions()
	res, err := Fig6(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for name, curves := range res.Curves {
		var csMean float64
		ascsMeans := []float64{}
		for _, c := range curves {
			m := meanOf(c.F1)
			if c.Label == "CS" {
				csMean = m
			} else {
				ascsMeans = append(ascsMeans, m)
			}
			t.Logf("%s %-18s meanF1=%.3f", name, c.Label, m)
		}
		if len(ascsMeans) == 0 {
			t.Fatalf("%s: no ASCS curves", name)
		}
		best := ascsMeans[0]
		for _, m := range ascsMeans {
			if m > best {
				best = m
			}
		}
		if best < csMean-0.05 {
			t.Errorf("%s: best ASCS F1 %.3f well below CS %.3f", name, best, csMean)
		}
	}
}

func TestFig6AlphaRobust(t *testing.T) {
	opt := tinyOptions()
	res, err := Fig6Alpha(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	curves := res.Curves["gisette"]
	if len(curves) != 4 { // CS + three α choices
		t.Fatalf("curves = %d", len(curves))
	}
	var ascsMeans []float64
	for _, c := range curves {
		if c.Label != "CS" {
			ascsMeans = append(ascsMeans, meanOf(c.F1))
		}
		t.Logf("%-14s meanF1=%.3f", c.Label, meanOf(c.F1))
	}
	min, max := ascsMeans[0], ascsMeans[0]
	for _, m := range ascsMeans {
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max-min > 0.4 {
		t.Errorf("ASCS F1 spread %.3f across α choices; should be robust", max-min)
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			s += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
