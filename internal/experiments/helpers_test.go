package experiments

import (
	"sort"
	"strings"
	"testing"
)

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{512, "512B"},
		{2048, "2.0KB"},
		{3 << 20, "3.0MB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 3) != 3 || maxInt(5, 1) != 5 {
		t.Error("maxInt broken")
	}
}

func TestTopCountGrid(t *testing.T) {
	g := topCountGrid(100)
	if !sort.IntsAreSorted(g) {
		t.Errorf("grid not sorted: %v", g)
	}
	if g[len(g)-1] != 100 {
		t.Errorf("grid must end at maxM: %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] == g[i-1] {
			t.Errorf("grid has duplicates: %v", g)
		}
	}
	tiny := topCountGrid(0)
	if len(tiny) == 0 || tiny[0] < 1 {
		t.Errorf("degenerate grid: %v", tiny)
	}
}

func TestNamesStable(t *testing.T) {
	a := Names()
	b := Names()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Error("Names must be deterministic")
	}
	if !sort.StringsAreSorted(a) {
		t.Error("Names must be sorted")
	}
	for _, want := range []string{"fig1", "fig6f", "table1", "table6", "ablation-schedule"} {
		found := false
		for _, n := range a {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestAllKeys(t *testing.T) {
	ks := allKeys(5)
	if len(ks) != 10 {
		t.Fatalf("allKeys(5) = %d keys", len(ks))
	}
	for i, k := range ks {
		if k != uint64(i) {
			t.Fatalf("keys must enumerate 0..p-1")
		}
	}
}

func TestCovEntriesOfRows(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 6}}
	got, err := covEntriesOfRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Population covariance of {(1,2),(3,6)}: means (2,4); cov = (1*2 + 1*2)/2 = 2.
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("covEntries = %v", got)
	}
	if _, err := covEntriesOfRows([][]float64{{1}}); err == nil {
		t.Error("single row should error")
	}
}
