package experiments

import (
	"io"
	"testing"
)

func TestAblationSchedule(t *testing.T) {
	opt := tinyOptions()
	res, err := AblationSchedule(opt, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	cs, _ := res.Get("CS")
	linear, ok := res.Get("ASCS-linear")
	if !ok {
		t.Fatal("missing linear row")
	}
	flat, _ := res.Get("ASCS-flat")
	steep, _ := res.Get("ASCS-steep")
	t.Logf("CS=%.3f flat=%.3f linear=%.3f steep=%.3f",
		cs.MeanTopCorr, flat.MeanTopCorr, linear.MeanTopCorr, steep.MeanTopCorr)
	// The solved linear schedule must beat plain CS on this workload.
	if linear.MeanTopCorr < cs.MeanTopCorr-0.02 {
		t.Errorf("linear schedule %.3f should be at least CS %.3f", linear.MeanTopCorr, cs.MeanTopCorr)
	}
}

func TestAblationGate(t *testing.T) {
	res, err := AblationGate(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	two, _ := res.Get("two-sided")
	one, _ := res.Get("one-sided")
	t.Logf("two-sided=%.3f one-sided=%.3f", two.MeanTopCorr, one.MeanTopCorr)
	// Both gates must be functional (positive score); with positive
	// signals they should be close.
	if two.MeanTopCorr <= 0 || one.MeanTopCorr <= 0 {
		t.Error("both gates should recover positive correlation mass")
	}
}

func TestAblationHash(t *testing.T) {
	res, err := AblationHash(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// All families should land in the same quality band (guards the
	// default mixing family against regressions).
	min, max := res.Rows[0].MeanTopCorr, res.Rows[0].MeanTopCorr
	for _, row := range res.Rows {
		t.Logf("%-12s %.3f", row.Variant, row.MeanTopCorr)
		if row.MeanTopCorr < min {
			min = row.MeanTopCorr
		}
		if row.MeanTopCorr > max {
			max = row.MeanTopCorr
		}
	}
	if max-min > 0.25 {
		t.Errorf("hash families diverge: spread %.3f", max-min)
	}
}

func TestAblationPagh(t *testing.T) {
	res, err := AblationPagh(tinyOptions(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	cs, _ := res.Get("CS-pairs")
	pagh, ok := res.Get("Pagh-outer")
	if !ok {
		t.Fatal("missing Pagh row")
	}
	for _, row := range res.Rows {
		t.Logf("%-12s %.3f  %s", row.Variant, row.MeanTopCorr, row.Note)
	}
	// Both are count sketches of the same stream at equal memory: the
	// accuracy band should overlap.
	if pagh.MeanTopCorr < cs.MeanTopCorr-0.15 {
		t.Errorf("Pagh %.3f far below pair-enumeration CS %.3f", pagh.MeanTopCorr, cs.MeanTopCorr)
	}
}
