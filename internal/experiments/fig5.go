package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/eval"
	"repro/internal/pairs"
)

// Fig5Point is one window of the Figure 5 series: the measured ratio
// SNR_ASCS(t)/SNR_CS(t) next to the Theorem 3 lower bound.
type Fig5Point struct {
	T        int
	Measured float64
	Bound    float64
}

// Fig5Result holds per-dataset series.
type Fig5Result struct {
	Series map[string][]Fig5Point
	// T0 per dataset (windows before it are exploration).
	T0 map[string]int
}

// Fig5 reproduces Figure 5: the measured ratio of ASCS's ingested SNR to
// vanilla CS's rises to a plateau once sampling starts and stays above
// the Theorem 3 lower bound, on the simulation and gisette-like data
// (δ = 0.05, δ* = 0.15, evaluated every 200 samples as in §7.3).
func Fig5(opt Options, w io.Writer) (Fig5Result, error) {
	res := Fig5Result{Series: map[string][]Fig5Point{}, T0: map[string]int{}}
	const d = 60
	T := opt.Scale.Samples
	every := 200
	if T < 1000 {
		every = T / 5
	}
	for _, which := range []string{"simulation", "gisette"} {
		tb, err := newTheoremBench(which, d, T, opt.Seed)
		if err != nil {
			return res, err
		}
		p := tb.params
		p.Delta = 0.05
		p.DeltaStar = 0.15
		hp, err := p.SolveConditional()
		if err != nil {
			return res, err
		}
		res.T0[which] = hp.T0

		isSignal := map[uint64]bool{}
		for _, k := range tb.signalKeys {
			isSignal[k] = true
		}
		label := func(key uint64) bool { return isSignal[key] }

		ascs, err := core.NewEngine(countsketch.Config{Tables: p.K, Range: p.R, Seed: uint64(opt.Seed)}, hp, true)
		if err != nil {
			return res, err
		}
		cs, err := countsketch.NewMeanSketch(countsketch.Config{Tables: p.K, Range: p.R, Seed: uint64(opt.Seed)}, len(tb.samples))
		if err != nil {
			return res, err
		}
		probeASCS := eval.NewSNRProbe(ascs, label, every)
		probeCS := eval.NewSNRProbe(cs, label, every)
		for t := 1; t <= len(tb.samples); t++ {
			probeASCS.BeginStep(t)
			probeCS.BeginStep(t)
			s := tb.samples[t-1]
			for i := 0; i < len(s.Idx); i++ {
				for j := i + 1; j < len(s.Idx); j++ {
					key := pairs.Key(s.Idx[i], s.Idx[j], tb.d)
					x := s.Val[i] * s.Val[j]
					probeASCS.Offer(key, x)
					probeCS.Offer(key, x)
				}
			}
		}
		pa := probeASCS.Points()
		pc := probeCS.Points()
		n := len(pa)
		if len(pc) < n {
			n = len(pc)
		}
		for i := 0; i < n; i++ {
			measured := math.NaN()
			if !math.IsNaN(pa[i].SNR) && !math.IsNaN(pc[i].SNR) && pc[i].SNR > 0 {
				measured = pa[i].SNR / pc[i].SNR
			} else if math.IsNaN(pa[i].SNR) && !math.IsNaN(pc[i].SNR) {
				// ASCS admitted no noise at all in this window: the
				// measured ratio is effectively unbounded.
				measured = math.Inf(1)
			}
			bound := math.NaN()
			if pa[i].T >= hp.T0 {
				bound = p.ROSNRBound(pa[i].T, hp.T0, hp.Theta)
			}
			res.Series[which] = append(res.Series[which], Fig5Point{T: pa[i].T, Measured: measured, Bound: bound})
		}
		fmt.Fprintf(w, "Figure 5 (%s): T0=%d theta=%.4f\n", which, hp.T0, hp.Theta)
		fmt.Fprintf(w, "%8s %12s %12s\n", "t", "measured", "theory-bound")
		for _, pt := range res.Series[which] {
			fmt.Fprintf(w, "%8d %12.3f %12.3f\n", pt.T, pt.Measured, pt.Bound)
		}
	}
	return res, nil
}
