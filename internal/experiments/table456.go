package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/pairs"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

// Table4Cell is one (dataset, engine) column of Table 4: the mean true
// correlation of the top fraction·αp estimated pairs, for the six paper
// fractions.
type Table4Cell struct {
	Dataset string
	Engine  string
	// ByFraction aligns with eval.Fractions.
	ByFraction []float64
	// Seconds is the sketching wall-clock (feeds Table 6).
	Seconds float64
}

// Table4Result collects all cells.
type Table4Result struct {
	Cells []Table4Cell
}

// Cell returns the cell for (dataset, engine).
func (r Table4Result) Cell(ds, engine string) (Table4Cell, bool) {
	for _, c := range r.Cells {
		if c.Dataset == ds && c.Engine == engine {
			return c, true
		}
	}
	return Table4Cell{}, false
}

// table4Engines builds the three §8.3 contenders for a dataset stream.
func table4Engines(samples []stream.Sample, d int, alpha float64, K, R int, seed uint64) ([]sketchapi.Ingestor, error) {
	cs, err := newCS(len(samples), K, R, seed)
	if err != nil {
		return nil, err
	}
	ask, err := newASketch(len(samples), K, R, seed)
	if err != nil {
		return nil, err
	}
	ascs, _, err := engineSetup(samples, d, alpha, K, R, seed)
	if err != nil {
		return nil, err
	}
	return []sketchapi.Ingestor{cs, ask, ascs}, nil
}

// Table4 reproduces Table 4 (and collects the Table 6 timings): for the
// five small datasets, the mean true correlation of the top
// {0.01, 0.05, 0.1, 0.25, 0.5, 1}·αp pairs reported by CS, Augmented
// Sketch and ASCS at equal memory. The expected shape: ASCS highest (or
// tied) nearly everywhere, ASketch between ASCS and CS.
func Table4(opt Options, w io.Writer) (Table4Result, error) {
	var res Table4Result
	for _, name := range dataset.SmallNames() {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		cells, err := table4Dataset(ds, opt)
		if err != nil {
			return res, fmt.Errorf("%s: %w", name, err)
		}
		res.Cells = append(res.Cells, cells...)
	}
	printTable4(w, res)
	return res, nil
}

// table4Dataset runs the three engines over one dataset.
func table4Dataset(ds *dataset.Dataset, opt Options) ([]Table4Cell, error) {
	samples, err := standardized(ds)
	if err != nil {
		return nil, err
	}
	d := ds.Dim
	p := pairs.Count(d)
	r := int(p) / opt.RDivisor
	if r < 16 {
		r = 16
	}
	engines, err := table4Engines(samples, d, ds.Alpha, opt.K, r, uint64(opt.Seed))
	if err != nil {
		return nil, err
	}
	truth, err := trueCorrOf(ds)
	if err != nil {
		return nil, err
	}
	sizes := eval.FractionSizes(p, ds.Alpha)
	var cells []Table4Cell
	for _, eng := range engines {
		est, dur, err := runEngine(samples, d, eng, 0)
		if err != nil {
			return nil, err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return nil, err
		}
		cell := Table4Cell{Dataset: ds.Name, Engine: eng.Name(), Seconds: dur.Seconds()}
		for _, k := range sizes {
			cell.ByFraction = append(cell.ByFraction, eval.MeanTrueScore(ranked, k, truth))
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func printTable4(w io.Writer, res Table4Result) {
	fmt.Fprintln(w, "Table 4: mean correlation of top fraction·αp pairs")
	datasets := []string{}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			datasets = append(datasets, c.Dataset)
		}
	}
	fmt.Fprintf(w, "%-10s %-9s", "fraction", "engine")
	for _, dsn := range datasets {
		fmt.Fprintf(w, " %9s", dsn)
	}
	fmt.Fprintln(w)
	for fi, f := range eval.Fractions {
		for _, engine := range []string{"CS", "ASketch", "ASCS"} {
			fmt.Fprintf(w, "%-10s %-9s", eval.FractionLabel(f), engine)
			for _, dsn := range datasets {
				if c, ok := res.Cell(dsn, engine); ok && fi < len(c.ByFraction) {
					fmt.Fprintf(w, " %9.3f", c.ByFraction[fi])
				} else {
					fmt.Fprintf(w, " %9s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// Table5Row is one (budget, K) cell: the mean correlation of the top
// 0.1·αp pairs found by ASCS on the gisette-like dataset.
type Table5Row struct {
	BudgetFloats int
	K            int
	R            int
	MeanTopCorr  float64
}

// Table5Result collects the grid.
type Table5Result struct {
	Rows []Table5Row
}

// At returns the cell for (budget, k).
func (r Table5Result) At(budget, k int) (Table5Row, bool) {
	for _, row := range r.Rows {
		if row.BudgetFloats == budget && row.K == k {
			return row, true
		}
	}
	return Table5Row{}, false
}

// Table5 reproduces Table 5: ASCS accuracy as the memory budget M and
// the table count K vary, on the gisette-like dataset. Expected shape:
// accuracy grows with M; for fixed M it is flat across K ∈ [4,10] and
// worse at K = 2.
func Table5(opt Options, w io.Writer) (Table5Result, error) {
	var res Table5Result
	ds := dataset.GisetteLike(opt.Scale, opt.Seed)
	samples, err := standardized(ds)
	if err != nil {
		return res, err
	}
	d := ds.Dim
	p := pairs.Count(d)
	truth, err := trueCorrOf(ds)
	if err != nil {
		return res, err
	}
	topK := int(0.1 * ds.Alpha * float64(p))
	if topK < 1 {
		topK = 1
	}
	// Budgets as fractions of p, echoing the paper's 10K..500K over
	// p ≈ 500K.
	budgets := []int{int(p) / 50, int(p) / 25, int(p) / 10, int(p) / 5, int(p)}
	ks := []int{2, 4, 6, 8, 10}
	for _, m := range budgets {
		for _, k := range ks {
			r := m / k
			if r < 4 {
				r = 4
			}
			eng, _, err := engineSetup(samples, d, ds.Alpha, k, r, uint64(opt.Seed))
			if err != nil {
				return res, err
			}
			est, _, err := runEngine(samples, d, eng, 0)
			if err != nil {
				return res, err
			}
			ranked, err := est.RankedKeys()
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, Table5Row{
				BudgetFloats: m, K: k, R: r,
				MeanTopCorr: eval.MeanTrueScore(ranked, topK, truth),
			})
		}
	}
	fmt.Fprintln(w, "Table 5: ASCS mean correlation of top 0.1·αp pairs (gisette-like)")
	fmt.Fprintf(w, "%-10s", "budget")
	for _, k := range ks {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("K=%d", k))
	}
	fmt.Fprintln(w)
	for _, m := range budgets {
		fmt.Fprintf(w, "%-10d", m)
		for _, k := range ks {
			row, _ := res.At(m, k)
			fmt.Fprintf(w, " %8.3f", row.MeanTopCorr)
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

// Table6Row is one dataset's sketching wall-clock for CS and ASCS.
type Table6Row struct {
	Dataset string
	// Seconds maps engine name → sketching time.
	Seconds map[string]float64
}

// Table6Result collects the rows.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 reproduces Table 6: CS and ASCS sketch the five datasets in
// comparable wall-clock time (the sampling gate adds only per-offer
// estimate lookups).
func Table6(opt Options, w io.Writer) (Table6Result, error) {
	var res Table6Result
	for _, name := range dataset.SmallNames() {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		samples, err := standardized(ds)
		if err != nil {
			return res, err
		}
		d := ds.Dim
		p := pairs.Count(d)
		r := int(p) / opt.RDivisor
		if r < 16 {
			r = 16
		}
		row := Table6Row{Dataset: name, Seconds: map[string]float64{}}
		cs, err := newCS(len(samples), opt.K, r, uint64(opt.Seed))
		if err != nil {
			return res, err
		}
		ascs, _, err := engineSetup(samples, d, ds.Alpha, opt.K, r, uint64(opt.Seed))
		if err != nil {
			return res, err
		}
		for _, eng := range []sketchapi.Ingestor{cs, ascs} {
			var total time.Duration
			_, dur, err := runEngine(samples, d, eng, 0)
			if err != nil {
				return res, err
			}
			total += dur
			row.Seconds[eng.Name()] = total.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	fmt.Fprintln(w, "Table 6: sketching wall-clock (seconds)")
	fmt.Fprintf(w, "%-10s %-8s %-8s\n", "dataset", "CS", "ASCS")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %-8.3f %-8.3f\n", r.Dataset, r.Seconds["CS"], r.Seconds["ASCS"])
	}
	return res, nil
}
