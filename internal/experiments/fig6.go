package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/covstream"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/pairs"
	"repro/internal/stream"
)

// Fig6Curve is one engine/parameterization curve: the max-F1 of signal
// recovery at each "number of top signal correlations" grid point.
type Fig6Curve struct {
	Label string
	// F1 aligns with Fig6Result.TopCounts.
	F1 []float64
}

// Fig6Result holds, per dataset, the CS curve and the ASCS curves for
// each signal-strength percentile choice.
type Fig6Result struct {
	TopCounts []int
	Curves    map[string][]Fig6Curve
}

// fig6UPercentiles are the signal-strength choices sweeping around the
// (1−α) percentile, demonstrating robustness to u (Figure 6a-e).
var fig6UPercentiles = []float64{90, 95, 97.5, 99}

// Fig6 reproduces Figure 6(a)-(e): the maximum F1 score of locating the
// top-m signal correlations, for vanilla CS and for ASCS under several
// choices of the signal strength u. Expected shape: every ASCS curve
// above CS across m, with only mild sensitivity to u.
func Fig6(opt Options, w io.Writer) (Fig6Result, error) {
	res := Fig6Result{Curves: map[string][]Fig6Curve{}}
	for _, name := range dataset.SmallNames() {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		counts, curves, err := fig6Dataset(ds, opt, nil)
		if err != nil {
			return res, fmt.Errorf("%s: %w", name, err)
		}
		res.TopCounts = counts
		res.Curves[name] = curves
	}
	printFig6(w, "Figure 6(a)-(e): max F1 vs number of top signals", res)
	return res, nil
}

// Fig6Alpha reproduces Figure 6(f): robustness of ASCS to the choice of
// α on the gisette-like dataset.
func Fig6Alpha(opt Options, w io.Writer) (Fig6Result, error) {
	res := Fig6Result{Curves: map[string][]Fig6Curve{}}
	ds := dataset.GisetteLike(opt.Scale, opt.Seed)
	alphas := []float64{ds.Alpha / 2, ds.Alpha, 2 * ds.Alpha}
	counts, curves, err := fig6Dataset(ds, opt, alphas)
	if err != nil {
		return res, err
	}
	res.TopCounts = counts
	res.Curves["gisette"] = curves
	printFig6(w, "Figure 6(f): max F1 vs number of top signals, varying α (gisette-like)", res)
	return res, nil
}

// fig6Dataset runs CS plus the ASCS variants over one dataset. When
// alphas is nil the u-percentile sweep of Figure 6(a)-(e) is used;
// otherwise one ASCS run per α (Figure 6(f)).
func fig6Dataset(ds *dataset.Dataset, opt Options, alphas []float64) ([]int, []Fig6Curve, error) {
	samples, err := standardized(ds)
	if err != nil {
		return nil, nil, err
	}
	d := ds.Dim
	p := pairs.Count(d)
	r := int(p) / opt.RDivisor
	if r < 16 {
		r = 16
	}
	absTruth, err := absCorrOf(ds)
	if err != nil {
		return nil, nil, err
	}
	// Signal-count grid: up to αp, log-ish spacing.
	maxM := int(ds.Alpha * float64(p))
	counts := topCountGrid(maxM)

	universe := allKeys(d)
	var curves []Fig6Curve
	addCurve := func(label string, ranked []uint64) {
		c := Fig6Curve{Label: label}
		for _, m := range counts {
			truthSet := eval.TopTrueKeys(universe, m, absTruth)
			c.F1 = append(c.F1, eval.MaxF1(ranked, m, func(k uint64) bool { return truthSet[k] }))
		}
		curves = append(curves, c)
	}

	// Vanilla CS baseline.
	cs, err := newCS(len(samples), opt.K, r, uint64(opt.Seed))
	if err != nil {
		return nil, nil, err
	}
	est, _, err := runEngine(samples, d, cs, 0)
	if err != nil {
		return nil, nil, err
	}
	ranked, err := est.RankedKeys()
	if err != nil {
		return nil, nil, err
	}
	addCurve("CS", ranked)

	// Shared warm-up for the ASCS variants.
	warmN := len(samples) / 20
	if warmN < 10 {
		warmN = 10
	}
	warm, err := covstream.Warmup(stream.NewSliceSource(samples, d), warmN,
		countsketch.Config{Tables: opt.K, Range: r, Seed: uint64(opt.Seed) ^ 0x77},
		covstream.SecondMoment, 200_000, opt.Seed)
	if err != nil {
		return nil, nil, err
	}
	runASCS := func(label string, u, alpha float64) error {
		tau0 := 1e-4
		if u < 10*tau0 {
			u = 10 * tau0
		}
		params := core.Params{
			P: p, T: len(samples), K: opt.K, R: r,
			U: u, Sigma: warm.Sigma, Alpha: alpha,
			Tau0: tau0, Gamma: 30,
		}.WithSuggestedDeltas()
		eng, _, err := core.NewAuto(params, uint64(opt.Seed), true)
		if err != nil {
			return err
		}
		est, _, err := runEngine(samples, d, eng, 0)
		if err != nil {
			return err
		}
		ranked, err := est.RankedKeys()
		if err != nil {
			return err
		}
		addCurve(label, ranked)
		return nil
	}
	if alphas == nil {
		for _, pct := range fig6UPercentiles {
			u := warm.Percentile(pct)
			if err := runASCS(fmt.Sprintf("ASCS u=%g%%ile", pct), u, ds.Alpha); err != nil {
				return nil, nil, err
			}
		}
	} else {
		for _, a := range alphas {
			u := warm.SignalStrength(a)
			if err := runASCS(fmt.Sprintf("ASCS α=%.3g", a), u, a); err != nil {
				return nil, nil, err
			}
		}
	}
	return counts, curves, nil
}

// topCountGrid returns up to five signal-count grid points ≤ maxM.
func topCountGrid(maxM int) []int {
	if maxM < 1 {
		maxM = 1
	}
	raw := []int{maxM / 20, maxM / 8, maxM / 4, maxM / 2, maxM}
	var out []int
	for _, m := range raw {
		if m < 1 {
			m = 1
		}
		if len(out) == 0 || m > out[len(out)-1] {
			out = append(out, m)
		}
	}
	return out
}

func printFig6(w io.Writer, title string, res Fig6Result) {
	fmt.Fprintln(w, title)
	names := make([]string, 0, len(res.Curves))
	for n := range res.Curves {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "[%s] top-m grid: %v\n", name, res.TopCounts)
		for _, c := range res.Curves[name] {
			fmt.Fprintf(w, "  %-18s", c.Label)
			for _, f := range c.F1 {
				fmt.Fprintf(w, " %6.3f", f)
			}
			fmt.Fprintln(w)
		}
	}
}
