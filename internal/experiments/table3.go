package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/pairs"
)

// Table3Row describes one evaluation dataset (the paper's Table 3 plus
// measured stream statistics).
type Table3Row struct {
	Name    string
	Dim     int
	Samples int
	Alpha   float64
	Pairs   int64
	AvgNNZ  float64
}

// Table3Result collects the roster.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 reproduces Table 3: the roster of small-scale evaluation
// datasets with their dimensions, sample counts and the subjective
// sparsity α used by ASCS (§8.1/§8.3), extended with measured average
// non-zeros per sample.
func Table3(opt Options, w io.Writer) (Table3Result, error) {
	var res Table3Result
	for _, name := range dataset.SmallNames() {
		ds, err := dataset.ByName(name, opt.Scale, opt.Seed)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Name:    name,
			Dim:     ds.Dim,
			Samples: ds.Samples(),
			Alpha:   ds.Alpha,
			Pairs:   pairs.Count(ds.Dim),
			AvgNNZ:  ds.AvgNNZ(),
		})
	}
	fmt.Fprintln(w, "Table 3: evaluation datasets")
	fmt.Fprintf(w, "%-10s %-8s %-10s %-8s %-12s %-8s\n", "dataset", "dim", "samples", "alpha", "pairs", "avg-nnz")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-10s %-8d %-10d %-8.3f %-12d %-8.1f\n",
			r.Name, r.Dim, r.Samples, r.Alpha, r.Pairs, r.AvgNNZ)
	}
	return res, nil
}
