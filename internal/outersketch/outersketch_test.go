package outersketch

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/pairs"
	"repro/internal/stream"
)

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	fft(x, false)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("x[%d] = %v, want 1", i, v)
		}
	}
	// DFT of [1,1,1,1] is [4,0,0,0].
	y := []complex128{1, 1, 1, 1}
	fft(y, false)
	if cmplx.Abs(y[0]-4) > 1e-12 || cmplx.Abs(y[1]) > 1e-12 {
		t.Fatalf("y = %v", y)
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 64)
	orig := make([]complex128, 64)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	fft(x, false)
	fft(x, true)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 128
	x := make([]complex128, n)
	timeE := 0.0
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	fft(x, false)
	freqE := 0.0
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fft(make([]complex128, 6), false)
}

func TestCircularSelfConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 16
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	buf := make([]complex128, n)
	for i, v := range vals {
		buf[i] = complex(v, 0)
	}
	circularSelfConvolve(buf)
	for k := 0; k < n; k++ {
		want := 0.0
		for a := 0; a < n; a++ {
			want += vals[a] * vals[(k-a+n)%n]
		}
		if math.Abs(real(buf[k])-want) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", k, real(buf[k]), want)
		}
		if math.Abs(imag(buf[k])) > 1e-9 {
			t.Fatalf("conv[%d] has imaginary residue %v", k, imag(buf[k]))
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Tables: 0, Range: 8}); err == nil {
		t.Error("zero tables accepted")
	}
	if _, err := New(Config{Tables: 3, Range: 12}); err == nil {
		t.Error("non-power-of-two range accepted")
	}
	if _, err := New(Config{Tables: 3, Range: 8, Hash: 99}); err == nil {
		t.Error("bad hash kind accepted")
	}
}

func TestAddOuterRejectsNonFinite(t *testing.T) {
	s, _ := New(Config{Tables: 3, Range: 64, Seed: 1})
	bad := stream.Sample{Idx: []int{0}, Val: []float64{math.NaN()}}
	if err := s.AddOuter(bad, 1); err == nil {
		t.Error("NaN accepted")
	}
}

func TestOuterSketchRecoversOuterProducts(t *testing.T) {
	// Large R: estimates of accumulated y_i·y_j should be near-exact.
	const d, T = 10, 200
	rng := rand.New(rand.NewSource(4))
	s, err := New(Config{Tables: 5, Range: 1 << 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	exact := make([][]float64, d)
	for i := range exact {
		exact[i] = make([]float64, d)
	}
	invT := 1.0 / T
	for step := 0; step < T; step++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				exact[i][j] += row[i] * row[j] * invT
			}
		}
		if err := s.AddOuter(stream.FromDense(row), invT); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			got := s.Estimate(i, j)
			if math.Abs(got-exact[i][j]) > 0.02 {
				t.Fatalf("estimate(%d,%d) = %v, want %v", i, j, got, exact[i][j])
			}
		}
	}
}

func TestOuterSketchSymmetric(t *testing.T) {
	s, _ := New(Config{Tables: 3, Range: 1 << 10, Seed: 2})
	sample := stream.Sample{Idx: []int{1, 4}, Val: []float64{2, 3}}
	if err := s.AddOuter(sample, 1); err != nil {
		t.Fatal(err)
	}
	if s.Estimate(1, 4) != s.Estimate(4, 1) {
		t.Error("estimates must be symmetric")
	}
	if got := s.Estimate(1, 4); math.Abs(got-6) > 1e-9 {
		t.Errorf("estimate = %v, want 6", got)
	}
	if got := s.EstimateDiagonal(1); math.Abs(got-4) > 1e-9 {
		t.Errorf("diagonal = %v, want 4", got)
	}
	s.Reset()
	if s.Estimate(1, 4) != 0 {
		t.Error("Reset should zero estimates")
	}
}

// TestOuterSketchMatchesPairEnumeration cross-validates the FFT path
// against the explicit pair-enumeration count sketch: same second
// moments recovered from the same stream (different hash structures, so
// compare against ground truth, not bucket-for-bucket).
func TestOuterSketchMatchesPairEnumeration(t *testing.T) {
	const d, T = 12, 300
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, T)
	for i := range rows {
		rows[i] = make([]float64, d)
		z := rng.NormFloat64()
		rows[i][0] = z
		rows[i][1] = 0.9*z + 0.436*rng.NormFloat64()
		for j := 2; j < d; j++ {
			rows[i][j] = rng.NormFloat64()
		}
	}
	outer, _ := New(Config{Tables: 5, Range: 1 << 13, Seed: 3})
	cs := countsketch.MustNew(countsketch.Config{Tables: 5, Range: 1 << 13, Seed: 3})
	invT := 1.0 / T
	for _, row := range rows {
		sm := stream.FromDense(row)
		if err := outer.AddOuter(sm, invT); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(sm.Idx); i++ {
			for j := i + 1; j < len(sm.Idx); j++ {
				cs.Add(pairs.Key(sm.Idx[i], sm.Idx[j], d), sm.Val[i]*sm.Val[j]*invT)
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			ov := outer.Estimate(a, b)
			cv := cs.Estimate(pairs.Key(a, b, d))
			if math.Abs(ov-cv) > 0.05 {
				t.Fatalf("pair (%d,%d): outer %v vs pair-enum %v", a, b, ov, cv)
			}
		}
	}
	// Both must rank the planted pair first.
	if outer.Estimate(0, 1) < 0.7 {
		t.Errorf("planted pair estimate = %v", outer.Estimate(0, 1))
	}
}

// BenchmarkOuterVsPairInsertion quantifies Pagh's speed advantage for
// dense samples: O(nz + R log R) vs O(nz²) per sample per table.
func BenchmarkOuterVsPairInsertion(b *testing.B) {
	const d = 512
	rng := rand.New(rand.NewSource(6))
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	sample := stream.FromDense(row)

	b.Run("outer-fft", func(b *testing.B) {
		s, _ := New(Config{Tables: 5, Range: 1 << 12, Seed: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.AddOuter(sample, 1e-6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pair-enum", func(b *testing.B) {
		cs := countsketch.MustNew(countsketch.Config{Tables: 5, Range: 1 << 12, Seed: 1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for x := 0; x < len(sample.Idx); x++ {
				for y := x + 1; y < len(sample.Idx); y++ {
					cs.Add(pairs.Key(sample.Idx[x], sample.Idx[y], d), sample.Val[x]*sample.Val[y]*1e-6)
				}
			}
		}
	})
}

func TestOuterSketchLinearityProperty(t *testing.T) {
	// Adding two streams separately and summing estimates must equal
	// adding the concatenated stream: the tables are linear, and with a
	// single table the estimate is too (median-of-K is not).
	rng := rand.New(rand.NewSource(7))
	mk := func() *Sketch {
		s, err := New(Config{Tables: 1, Range: 256, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	combined := mk()
	a, b := mk(), mk()
	for i := 0; i < 40; i++ {
		row := make([]float64, 20)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = rng.NormFloat64()
			}
		}
		sm := stream.FromDense(row)
		if err := combined.AddOuter(sm, 0.5); err != nil {
			t.Fatal(err)
		}
		target := a
		if i%2 == 1 {
			target = b
		}
		if err := target.AddOuter(sm, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			sum := a.Estimate(i, j) + b.Estimate(i, j)
			if math.Abs(sum-combined.Estimate(i, j)) > 1e-9 {
				t.Fatalf("linearity violated at (%d,%d): %v vs %v", i, j, sum, combined.Estimate(i, j))
			}
		}
	}
}
