package outersketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Sketch is a count sketch of the accumulated outer products
// Σ_t scale·(y^(t) ⊗ y^(t)), with the Pagh pair-hash structure
// h(i,j) = (h_e(i) + h_e(j)) mod R and sign s_e(i)·s_e(j). Inserting a
// sample costs O(nz + R log R) per table.
type Sketch struct {
	k, r int
	h    hashing.PairHasher
	w    []float64 // k rows of r buckets

	// scratch buffers reused across AddOuter calls
	buf []complex128
}

// Config shapes the sketch. Range must be a power of two (FFT length).
type Config struct {
	Tables int
	Range  int
	Seed   uint64
	Hash   hashing.Kind
}

// New builds an empty outer-product sketch.
func New(cfg Config) (*Sketch, error) {
	if cfg.Tables < 1 || cfg.Tables > 64 {
		return nil, fmt.Errorf("outersketch: Tables must be in [1,64], got %d", cfg.Tables)
	}
	if cfg.Range < 2 || cfg.Range&(cfg.Range-1) != 0 {
		return nil, fmt.Errorf("outersketch: Range must be a power of two ≥ 2, got %d", cfg.Range)
	}
	h, err := hashing.New(cfg.Hash, cfg.Tables, cfg.Range, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Sketch{
		k:   cfg.Tables,
		r:   cfg.Range,
		h:   h,
		w:   make([]float64, cfg.Tables*cfg.Range),
		buf: make([]complex128, cfg.Range),
	}, nil
}

// K returns the table count.
func (s *Sketch) K() int { return s.k }

// R returns the buckets per table.
func (s *Sketch) R() int { return s.r }

// Bytes reports the table footprint.
func (s *Sketch) Bytes() int { return 8 * len(s.w) }

// AddOuter folds scale·(y ⊗ y) into the sketch, where y is the sparse
// sample. All d² entries of the outer product — including the diagonal
// and both (i,j) and (j,i) — are represented; Estimate compensates.
func (s *Sketch) AddOuter(sample stream.Sample, scale float64) error {
	for _, v := range sample.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("outersketch: non-finite sample value %v", v)
		}
	}
	for e := 0; e < s.k; e++ {
		for i := range s.buf {
			s.buf[i] = 0
		}
		for i, ix := range sample.Idx {
			key := uint64(ix)
			b := s.h.Bucket(e, key)
			s.buf[b] += complex(s.h.Sign(e, key)*sample.Val[i], 0)
		}
		circularSelfConvolve(s.buf)
		row := s.w[e*s.r : (e+1)*s.r]
		for b := 0; b < s.r; b++ {
			row[b] += scale * real(s.buf[b])
		}
	}
	return nil
}

// Estimate returns the median-of-K estimate of the accumulated (i,j)
// outer-product entry for i ≠ j, i.e. Σ_t scale·y_i y_j. The sketch
// stores y⊗y symmetrically, so the bucket holds both (i,j) and (j,i);
// the estimate halves the retrieved value to match the upper-triangle
// convention used by the pair-enumeration engines.
func (s *Sketch) Estimate(i, j int) float64 {
	if i == j {
		return s.EstimateDiagonal(i)
	}
	var buf [64]float64
	ki, kj := uint64(i), uint64(j)
	for e := 0; e < s.k; e++ {
		b := (s.h.Bucket(e, ki) + s.h.Bucket(e, kj)) % s.r
		buf[e] = s.w[e*s.r+b] * s.h.Sign(e, ki) * s.h.Sign(e, kj) / 2
	}
	return stats.MedianSmall(buf[:s.k], buf[:s.k])
}

// EstimateDiagonal returns the estimate of the (i,i) entry Σ scale·y_i².
func (s *Sketch) EstimateDiagonal(i int) float64 {
	var buf [64]float64
	ki := uint64(i)
	for e := 0; e < s.k; e++ {
		b := (2 * s.h.Bucket(e, ki)) % s.r
		// sign(i)·sign(i) = 1.
		buf[e] = s.w[e*s.r+b]
	}
	return stats.MedianSmall(buf[:s.k], buf[:s.k])
}

// Reset zeroes the tables.
func (s *Sketch) Reset() {
	for i := range s.w {
		s.w[i] = 0
	}
}
