// Package outersketch implements Pagh's compressed matrix multiplication
// (TOCT 2013) specialized to covariance sketching, as discussed in the
// paper's related work (§2): the count sketch of a rank-1 update y⊗y is
// the circular self-convolution of a hashed vector, computable in
// O(nz + R log R) per sample via FFT instead of the O(nz²) explicit pair
// enumeration. The trade-off the paper exploits is that this path cannot
// gate individual pairs — every entry is folded in, so ASCS's active
// sampling (the SNR repair) is impossible here. The benchmark
// BenchmarkOuterVsPairInsertion quantifies the speed side of that trade.
package outersketch

import (
	"fmt"
	"math"
	"math/bits"
)

// fft computes the in-place radix-2 Cooley-Tukey FFT of x (len must be a
// power of two). inverse selects the inverse transform (scaled by 1/n).
func fft(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("outersketch: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wBase := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wBase
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// circularSelfConvolve replaces buf with its circular self-convolution:
// out[k] = Σ_{a+b ≡ k (mod n)} buf[a]·buf[b], using one forward FFT, a
// pointwise square, and one inverse FFT.
func circularSelfConvolve(buf []complex128) {
	fft(buf, false)
	for i, v := range buf {
		buf[i] = v * v
	}
	fft(buf, true)
}
