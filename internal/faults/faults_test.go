package faults

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	if in, err := Parse(""); in != nil || err != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", in, err)
	}
	in, err := Parse("seed=7,latency=2ms@0.25,stall=1:50ms,drop=0.01,dup=0.02,snapwrite=4096,fsyncerr,torn")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 7 || in.applyLatency != 2*time.Millisecond || in.applyLatencyP != 0.25 {
		t.Fatalf("latency fields wrong: %+v", in)
	}
	if in.stallShard.Load() != 1 || in.stallFor != 50*time.Millisecond {
		t.Fatalf("stall fields wrong: shard=%d for=%v", in.stallShard.Load(), in.stallFor)
	}
	if in.dropP != 0.01 || in.dupP != 0.02 {
		t.Fatalf("delivery fields wrong: drop=%v dup=%v", in.dropP, in.dupP)
	}
	if in.snapWriteAfter != 4096 || !in.snapFsyncErr || !in.tornManifest {
		t.Fatalf("snapshot fields wrong: %+v", in)
	}
	if in.TimingOnly() {
		t.Fatal("spec with delivery+snapshot faults reported TimingOnly")
	}
	timing, err := Parse("latency=1ms@0.5,stall=0")
	if err != nil {
		t.Fatal(err)
	}
	if !timing.TimingOnly() {
		t.Fatal("latency+stall spec must be TimingOnly")
	}

	for _, bad := range []string{
		"seed=x", "latency=0s", "latency=2ms@1.5", "stall=-1", "stall=0:0s",
		"drop=2", "dup=-0.1", "snapwrite=-1", "fsyncerr=1", "torn=1", "unknown=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestDeliveryDeterminism pins the seeded decision stream: two
// injectors with the same seed draw the identical drop/dup sequence,
// and a different seed draws a different one.
func TestDeliveryDeterminism(t *testing.T) {
	const n = 2000
	fates := func(spec string) []Delivery {
		in, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Delivery, n)
		for i := range out {
			out[i] = in.Deliver(0)
		}
		return out
	}
	a := fates("seed=42,drop=0.1,dup=0.1")
	b := fates("seed=42,drop=0.1,dup=0.1")
	c := fates("seed=43,drop=0.1,dup=0.1")
	var drops, diff int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Drop {
			drops++
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if drops == 0 {
		t.Fatal("0 drops over 2000 draws at p=0.1")
	}
	if diff == 0 {
		t.Fatal("different seeds drew identical fate sequences")
	}
}

// TestNilInjectorIsInert: every hook must be a no-op on nil — the
// production configuration.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.BeforeApply(0)
	in.ReleaseStalls()
	if d := in.Deliver(3); d.Drop || d.Dup {
		t.Fatalf("nil Deliver = %+v", d)
	}
	if !in.TimingOnly() {
		t.Fatal("nil injector must be TimingOnly")
	}
	var buf bytes.Buffer
	if w := in.SnapshotWriter(&buf); w != &buf {
		t.Fatal("nil SnapshotWriter must return the writer unchanged")
	}
	if err := in.FsyncErr(); err != nil {
		t.Fatal(err)
	}
	if in.TornManifest() {
		t.Fatal("nil TornManifest")
	}
}

// TestStallReleases: an open-ended stall parks BeforeApply until
// ReleaseStalls, which is idempotent and disables further stalling.
func TestStallReleases(t *testing.T) {
	in, err := Parse("stall=0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		in.BeforeApply(0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("BeforeApply returned before ReleaseStalls")
	case <-time.After(20 * time.Millisecond):
	}
	in.ReleaseStalls()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BeforeApply still parked after ReleaseStalls")
	}
	in.ReleaseStalls() // idempotent
	in.BeforeApply(0)  // stalling disabled: returns immediately
	if got := in.Stalls.Load(); got != 1 {
		t.Fatalf("Stalls = %d, want 1", got)
	}
}

// TestSnapshotWriterFaults: the write fault fires past the byte budget
// and wraps ErrInjected; fsyncerr reports the same root.
func TestSnapshotWriterFaults(t *testing.T) {
	in, err := Parse("snapwrite=8,fsyncerr")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := in.SnapshotWriter(&buf)
	if _, err := w.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write inside the budget: %v", err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past the budget: got %v, want ErrInjected", err)
	}
	if err := in.FsyncErr(); !errors.Is(err, ErrInjected) {
		t.Fatalf("FsyncErr: got %v, want ErrInjected", err)
	}
	if in.WriteErrs.Load() == 0 {
		t.Fatal("write errors not counted")
	}
}

// TestWALFaults covers the WAL-side kinds: walwrite spends a per-wrap
// byte budget then fails with ErrInjected, waltorn chops on demand, and
// both land in the per-kind fired counters.
func TestWALFaults(t *testing.T) {
	in, err := Parse("walwrite=8,waltorn")
	if err != nil {
		t.Fatal(err)
	}
	if in.TimingOnly() {
		t.Fatal("WAL faults reported TimingOnly")
	}
	var buf bytes.Buffer
	w := in.WALWriter(&buf)
	if _, err := w.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write inside the budget: %v", err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past the budget: got %v, want ErrInjected", err)
	}
	if !in.WALTorn() {
		t.Fatal("waltorn spec did not fire")
	}
	counts := map[string]uint64{}
	for _, f := range in.Fired() {
		counts[f.Kind] = f.Count
	}
	if counts["walwrite"] == 0 || counts["waltorn"] == 0 {
		t.Fatalf("fired counters missed the WAL kinds: %v", counts)
	}

	for _, bad := range []string{"walwrite=-1", "walwrite=x", "waltorn=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// TestFiredStableOnNil: the per-kind view must expose every kind — at
// zero — on a nil injector, so the metric family always has the same
// label set.
func TestFiredStableOnNil(t *testing.T) {
	var in *Injector
	var buf bytes.Buffer
	if w := in.WALWriter(&buf); w != &buf {
		t.Fatal("nil WALWriter must return the writer unchanged")
	}
	if in.WALTorn() {
		t.Fatal("nil WALTorn")
	}
	fired := in.Fired()
	if len(fired) != 9 {
		t.Fatalf("Fired on nil returned %d kinds, want 9", len(fired))
	}
	seen := map[string]bool{}
	for _, f := range fired {
		if f.Kind == "" || f.Count != 0 || seen[f.Kind] {
			t.Fatalf("nil Fired entry %+v (seen=%v)", f, seen)
		}
		seen[f.Kind] = true
	}
}
