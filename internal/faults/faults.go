// Package faults is the deterministic fault-injection layer of the
// serving stack: a seeded Injector that the shard workers, the batch
// router, and the snapshot writer consult at a handful of well-defined
// points, so chaos tests (internal/chaostest) and the `ascsd -faults`
// flag can exercise the failure model — latency spikes, stalled
// workers, dropped and duplicated batch delivery, snapshot I/O errors,
// torn manifests, WAL write failures and torn WAL tails — without
// patching production code paths per test.
//
// # Design constraints
//
//   - Deterministic. Every probabilistic decision is drawn from a
//     splitmix64 stream seeded at construction and advanced by an
//     atomic counter, so a single-sender run replays the exact same
//     drop/dup/latency sequence for a given seed. (With concurrent
//     senders the interleaving of decisions is scheduler-dependent —
//     inherent — but each decision sequence is still the seeded one.)
//
//   - Nil-safe and hot-path-cheap. Every method is safe on a nil
//     *Injector (the production configuration), so call sites guard
//     with a single pointer check and disabled deployments pay one
//     predictable branch per *batch*, never per pair.
//
//   - Observable. The injector counts what it injected (Latencies,
//     Stalls, Drops, Dups, WriteErrs) so harnesses can assert that the
//     system's shed/error accounting matches the faults actually fired
//     rather than trusting the probabilities.
//
// Injected errors wrap ErrInjected, so tests can tell a synthetic
// failure from a real one with errors.Is.
package faults

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every synthetic error this package
// produces.
var ErrInjected = errors.New("faults: injected error")

// Fault kinds, indexing the per-kind observed-fire counters. The order
// is the stable exposition order of the ascs_faults_fired_total metric
// family — append new kinds at the end, never reorder.
const (
	kindLatency = iota
	kindStall
	kindDrop
	kindDup
	kindSnapWrite
	kindFsyncErr
	kindTorn
	kindWALWrite
	kindWALTorn
	numKinds
)

// kindNames are the spec/metric-label names of the fault kinds, in
// counter order.
var kindNames = [numKinds]string{
	"latency", "stall", "drop", "dup",
	"snapwrite", "fsyncerr", "torn", "walwrite", "waltorn",
}

// FiredCount is one fault kind's observed-fire total.
type FiredCount struct {
	Kind  string
	Count uint64
}

// Injector holds a parsed fault scenario. The zero value injects
// nothing; a nil *Injector is valid everywhere.
type Injector struct {
	seed uint64
	ctr  atomic.Uint64 // decision counter: one draw per probabilistic choice

	// Apply-side timing faults (worker goroutine, per batch).
	applyLatency  time.Duration // latency spike duration
	applyLatencyP float64       // per-batch spike probability
	// stallShard is the shard whose worker stalls (-1: none). Atomic:
	// ReleaseStalls clears it while workers read it per batch.
	stallShard atomic.Int64
	stallFor   time.Duration // 0: stall until ReleaseStalls

	// Delivery faults (sender side, per shipped batch).
	dropP float64
	dupP  float64

	// Snapshot I/O faults.
	snapWriteAfter int64 // inject a write error after this many bytes (-1: off)
	snapFsyncErr   bool
	tornManifest   bool

	// WAL faults.
	walWriteAfter int64 // WAL segment writes fail past this many bytes (-1: off)
	walTorn       bool  // chop the tail of the last WAL record on Close

	stallMu sync.Mutex
	stallCh chan struct{} // closed by ReleaseStalls

	// Injection counters, for harness assertions. The legacy aggregate
	// counters stay (existing harnesses read them directly); fired adds
	// the per-kind view behind the ascs_faults_fired_total family.
	Latencies atomic.Uint64
	Stalls    atomic.Uint64
	Drops     atomic.Uint64
	Dups      atomic.Uint64
	WriteErrs atomic.Uint64

	fired [numKinds]atomic.Uint64
}

// Fired returns every fault kind's observed-fire count in the stable
// exposition order of ascs_faults_fired_total. Safe on nil (all
// zeros), so the metric family exists — at zero — even in production
// deployments without an injector.
func (in *Injector) Fired() [numKinds]FiredCount {
	var out [numKinds]FiredCount
	for i := range out {
		out[i].Kind = kindNames[i]
		if in != nil {
			out[i].Count = in.fired[i].Load()
		}
	}
	return out
}

// New returns an empty (inject-nothing) Injector with the given seed;
// configure it via Parse in normal use.
func New(seed uint64) *Injector {
	in := &Injector{seed: seed, snapWriteAfter: -1, walWriteAfter: -1}
	in.stallShard.Store(-1)
	return in
}

// Parse builds an Injector from a comma-separated scenario spec:
//
//	seed=N            decision-stream seed (default 1)
//	latency=DUR@P     per-batch apply latency spike of DUR with probability P
//	                  (@P optional; default 1 = every batch)
//	stall=SHARD[:DUR] shard SHARD's worker blocks in its next apply — for DUR,
//	                  or until ReleaseStalls when DUR is omitted
//	drop=P            a shipped batch is silently dropped with probability P
//	dup=P             a shipped batch is delivered twice with probability P
//	snapwrite=BYTES   snapshot blob writes fail after BYTES bytes
//	fsyncerr          snapshot blob fsync fails
//	torn              the snapshot manifest is committed truncated (torn write)
//	walwrite=BYTES    WAL appends fail once BYTES bytes have entered a segment
//	waltorn           the WAL's last record is chopped mid-frame on Close (the
//	                  on-disk state a crash mid-write leaves)
//
// Example: "seed=7,latency=2ms@0.2,drop=0.01,torn". An empty spec
// returns (nil, nil): no injector at all.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(1)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			in.seed = n
		case "latency":
			durStr, pStr, hasP := strings.Cut(val, "@")
			d, err := time.ParseDuration(durStr)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("faults: bad latency duration %q", durStr)
			}
			p := 1.0
			if hasP {
				if p, err = parseProb(pStr); err != nil {
					return nil, err
				}
			}
			in.applyLatency, in.applyLatencyP = d, p
		case "stall":
			shStr, durStr, hasDur := strings.Cut(val, ":")
			sh, err := strconv.Atoi(shStr)
			if err != nil || sh < 0 {
				return nil, fmt.Errorf("faults: bad stall shard %q", shStr)
			}
			in.stallShard.Store(int64(sh))
			if hasDur {
				d, err := time.ParseDuration(durStr)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faults: bad stall duration %q", durStr)
				}
				in.stallFor = d
			}
		case "drop":
			p, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			in.dropP = p
		case "dup":
			p, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			in.dupP = p
		case "snapwrite":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad snapwrite byte count %q", val)
			}
			in.snapWriteAfter = n
		case "fsyncerr":
			if hasVal {
				return nil, fmt.Errorf("faults: fsyncerr takes no value")
			}
			in.snapFsyncErr = true
		case "torn":
			if hasVal {
				return nil, fmt.Errorf("faults: torn takes no value")
			}
			in.tornManifest = true
		case "walwrite":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad walwrite byte count %q", val)
			}
			in.walWriteAfter = n
		case "waltorn":
			if hasVal {
				return nil, fmt.Errorf("faults: waltorn takes no value")
			}
			in.walTorn = true
		default:
			return nil, fmt.Errorf("faults: unknown fault %q", key)
		}
	}
	return in, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faults: probability %q must be in [0,1]", s)
	}
	return p, nil
}

// splitmix64 is the decision-stream generator: stateless per draw, so
// decision i is a pure function of (seed, i).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns the next uniform value in [0,1) from the decision
// stream.
func (in *Injector) draw() float64 {
	i := in.ctr.Add(1)
	return float64(splitmix64(in.seed+i)>>11) / float64(1<<53)
}

// BeforeApply runs on the worker goroutine immediately before a batch
// is applied: it injects the configured latency spike and, for the
// stalled shard, blocks (for stallFor, or until ReleaseStalls). Safe on
// nil.
func (in *Injector) BeforeApply(shard int) {
	if in == nil {
		return
	}
	if in.stallShard.Load() == int64(shard) {
		in.Stalls.Add(1)
		in.fired[kindStall].Add(1)
		if in.stallFor > 0 {
			time.Sleep(in.stallFor)
		} else {
			<-in.stallChan()
		}
	}
	if in.applyLatency > 0 && in.draw() < in.applyLatencyP {
		in.Latencies.Add(1)
		in.fired[kindLatency].Add(1)
		time.Sleep(in.applyLatency)
	}
}

func (in *Injector) stallChan() chan struct{} {
	in.stallMu.Lock()
	defer in.stallMu.Unlock()
	if in.stallCh == nil {
		in.stallCh = make(chan struct{})
	}
	return in.stallCh
}

// ReleaseStalls unblocks every worker parked by an open-ended stall and
// disables further stalling, so harnesses can drain and close cleanly.
// Idempotent.
func (in *Injector) ReleaseStalls() {
	if in == nil {
		return
	}
	in.stallMu.Lock()
	defer in.stallMu.Unlock()
	in.stallShard.Store(-1)
	if in.stallCh == nil {
		in.stallCh = make(chan struct{})
		close(in.stallCh)
		return
	}
	select {
	case <-in.stallCh:
	default:
		close(in.stallCh)
	}
}

// Delivery is one batch's delivery fate.
type Delivery struct {
	// Drop: the batch silently never arrives.
	Drop bool
	// Dup: the batch is delivered twice (the duplicate must be a copy —
	// the worker recycles applied buffers).
	Dup bool
}

// Deliver draws the delivery fate of one shipped batch. Safe on nil
// (always a clean delivery).
func (in *Injector) Deliver(shard int) Delivery {
	if in == nil || (in.dropP == 0 && in.dupP == 0) {
		return Delivery{}
	}
	var d Delivery
	if in.dropP > 0 && in.draw() < in.dropP {
		d.Drop = true
		in.Drops.Add(1)
		in.fired[kindDrop].Add(1)
		return d
	}
	if in.dupP > 0 && in.draw() < in.dupP {
		d.Dup = true
		in.Dups.Add(1)
		in.fired[kindDup].Add(1)
	}
	return d
}

// TimingOnly reports whether the scenario injects only timing faults
// (latency, stall) — the class under which the chaos harness asserts
// bit-identical tables versus an unfaulted run.
func (in *Injector) TimingOnly() bool {
	if in == nil {
		return true
	}
	return in.dropP == 0 && in.dupP == 0 && in.snapWriteAfter < 0 &&
		!in.snapFsyncErr && !in.tornManifest &&
		in.walWriteAfter < 0 && !in.walTorn
}

// faultyWriter fails with ErrInjected once n bytes have passed. what
// names the faulted surface in the error; kind indexes the fired
// counter.
type faultyWriter struct {
	w    io.Writer
	left int64
	in   *Injector
	what string
	kind int
}

func (fw *faultyWriter) Write(p []byte) (int, error) {
	if fw.left <= 0 {
		fw.in.WriteErrs.Add(1)
		fw.in.fired[fw.kind].Add(1)
		return 0, fmt.Errorf("%s write past byte budget: %w", fw.what, ErrInjected)
	}
	if int64(len(p)) > fw.left {
		fw.in.WriteErrs.Add(1)
		fw.in.fired[fw.kind].Add(1)
		n, _ := fw.w.Write(p[:fw.left])
		fw.left = 0
		return n, fmt.Errorf("%s write truncated: %w", fw.what, ErrInjected)
	}
	fw.left -= int64(len(p))
	return fw.w.Write(p)
}

// SnapshotWriter wraps a snapshot blob writer with the configured write
// fault (error after N bytes). Safe on nil (returns w unchanged).
func (in *Injector) SnapshotWriter(w io.Writer) io.Writer {
	if in == nil || in.snapWriteAfter < 0 {
		return w
	}
	return &faultyWriter{w: w, left: in.snapWriteAfter, in: in, what: "snapshot", kind: kindSnapWrite}
}

// WALWriter wraps a WAL segment writer with the configured walwrite
// fault: appends fail once the byte budget for the segment is spent
// (the budget resets per segment — rotation starts a fresh wrap). Safe
// on nil (returns w unchanged).
func (in *Injector) WALWriter(w io.Writer) io.Writer {
	if in == nil || in.walWriteAfter < 0 {
		return w
	}
	return &faultyWriter{w: w, left: in.walWriteAfter, in: in, what: "wal", kind: kindWALWrite}
}

// FsyncErr returns the injected fsync failure for snapshot blobs, or
// nil. Safe on nil.
func (in *Injector) FsyncErr() error {
	if in == nil || !in.snapFsyncErr {
		return nil
	}
	in.WriteErrs.Add(1)
	in.fired[kindFsyncErr].Add(1)
	return fmt.Errorf("snapshot fsync: %w", ErrInjected)
}

// TornManifest reports whether the manifest commit should simulate a
// torn write (truncated JSON reaching the final name). Safe on nil.
func (in *Injector) TornManifest() bool {
	if in == nil || !in.tornManifest {
		return false
	}
	in.fired[kindTorn].Add(1)
	return true
}

// WALTorn reports whether the WAL should chop the tail of its last
// record on Close, simulating a crash mid-write. Safe on nil.
func (in *Injector) WALTorn() bool {
	if in == nil || !in.walTorn {
		return false
	}
	in.fired[kindWALTorn].Add(1)
	return true
}
