// Package chaostest is the chaos harness of the serving stack: it runs
// the HTTP server and the shard manager under injected faults
// (internal/faults) and asserts the robustness invariants the failure
// model promises — no deadlock, every request terminates within its
// deadline budget, shed accounting reconciles exactly with the 429s
// served, timing-only faults never change sketch state, and corrupt
// snapshots fail closed while the old manager keeps serving.
package chaostest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

// budget is the hard per-request termination bound the harness
// enforces: far above any configured deadline, far below a hang.
const budget = 5 * time.Second

func chaosSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 2)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{1, -0.5, 2}}
	}
	return out
}

// newChaosServer builds a small 2-shard CS server with the given
// injector and options. The injector's stalls are released in cleanup
// before the manager closes, so a failing test never deadlocks
// teardown.
func newChaosServer(t *testing.T, in *faults.Injector, cfg shard.Config, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg.Dim = 16
	cfg.Shards = 2
	cfg.Faults = in
	cfg.Engine = shard.EngineSpec{
		Kind:   shard.KindCS,
		Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 21},
		T:      1 << 20,
	}
	mgr, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(mgr, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		in.ReleaseStalls()
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postIngest(t *testing.T, base string, samples []stream.Sample) *http.Response {
	t.Helper()
	req := server.IngestRequest{Samples: make([]server.SampleJSON, len(samples))}
	for i, s := range samples {
		req.Samples[i] = server.SampleJSON{Idx: s.Idx, Val: s.Val}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func scrapeFamilies(t *testing.T, base string) obs.Families {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// TestStalledShardDeadlines is the tentpole acceptance drill: with one
// shard's worker stalled indefinitely, every query and every ingest
// bounded by a 100ms deadline must terminate as a 503 within budget —
// never hang — and the server's deadline accounting must match the
// 503s observed. After ReleaseStalls the backlog drains and the
// service recovers.
func TestStalledShardDeadlines(t *testing.T) {
	in, err := faults.Parse("stall=0")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newChaosServer(t, in, shard.Config{QueueLen: 8},
		server.Options{QueryTimeout: 100 * time.Millisecond, IngestTimeout: 100 * time.Millisecond})
	samples := chaosSamples(16, 64)

	// Feed batches until shard 0's worker has picked one up and parked.
	i := 0
	for in.Stalls.Load() == 0 && i < len(samples) {
		if resp := postIngest(t, ts.URL, samples[i:i+1]); resp.StatusCode != http.StatusOK &&
			resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("priming ingest %d: status %d", i, resp.StatusCode)
		}
		i++
	}
	if in.Stalls.Load() == 0 {
		t.Fatal("stall fault never fired")
	}

	deadline503 := 0
	for q := 0; q < 5; q++ {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/v1/topk?k=5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if el := time.Since(start); el > budget {
			t.Fatalf("query %d took %v against a stalled shard (budget %v)", q, el, budget)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("query %d against a stalled shard: status %d, want 503", q, resp.StatusCode)
		}
		deadline503++
	}

	// Keep ingesting until the stalled shard's FIFO is full and the
	// 100ms ingest deadline fires — it must 503 within budget too.
	sawIngest503 := false
	for r := 0; r < 64 && !sawIngest503; r++ {
		start := time.Now()
		resp := postIngest(t, ts.URL, samples[r%len(samples):r%len(samples)+1])
		if el := time.Since(start); el > budget {
			t.Fatalf("ingest %d took %v against a full stalled FIFO (budget %v)", r, el, budget)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawIngest503 = true
			deadline503++
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", r, resp.StatusCode)
		}
	}
	if !sawIngest503 {
		t.Fatal("full-FIFO ingest never hit its deadline")
	}

	fams := scrapeFamilies(t, ts.URL)
	if got := fams["ascs_http_deadline_exceeded_total"].Sum; got != float64(deadline503) {
		t.Fatalf("ascs_http_deadline_exceeded_total = %v, want %d", got, deadline503)
	}

	// Recovery: release the stall, drain, and the same query succeeds.
	in.ReleaseStalls()
	okDeadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(ts.URL + "/v1/topk?k=5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(okDeadline) {
			t.Fatalf("service did not recover after ReleaseStalls (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShedCountsMatch429s reconciles the three shed ledgers under the
// shed admission policy with a stalled shard: the 429s the client saw,
// the HTTP layer's ascs_http_shed_total, and the manager's
// ascs_shed_requests_total must agree exactly, and every 429 must
// carry a positive integral Retry-After.
func TestShedCountsMatch429s(t *testing.T) {
	in, err := faults.Parse("stall=0")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newChaosServer(t, in, shard.Config{QueueLen: 4, Admission: shard.AdmitShed}, server.Options{})
	samples := chaosSamples(16, 256)

	client429 := 0
	for i := range samples {
		resp := postIngest(t, ts.URL, samples[i:i+1])
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			client429++
			ra := resp.Header.Get("Retry-After")
			if ra == "" {
				t.Fatal("429 without Retry-After")
			}
			if !strings.ContainsAny(ra, "123456789") {
				t.Fatalf("Retry-After %q is not a positive duration", ra)
			}
		default:
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		if client429 >= 20 {
			break
		}
	}
	if client429 == 0 {
		t.Fatal("stalled shard with a 4-deep queue never shed")
	}

	fams := scrapeFamilies(t, ts.URL)
	if got := fams["ascs_http_shed_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_http_shed_total = %v, want %d", got, client429)
	}
	if got := fams["ascs_shed_requests_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_shed_requests_total = %v, want %d", got, client429)
	}
	if got := fams["ascs_shard_admission_rejects_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_shard_admission_rejects_total = %v, want %d", got, client429)
	}
}

// TestTimingFaultsPreserveTables pins the state-integrity invariant:
// timing-only faults (latency spikes on every batch) may slow the
// pipeline but must never change what gets applied — the full query
// surface of a faulted run (every pair estimate, the top-k list, the
// op/step ledger) is bit-identical to an unfaulted reference fed the
// same stream.
func TestTimingFaultsPreserveTables(t *testing.T) {
	const d, n = 30, 500
	ds := dataset.Simulation(d, n, 0.02, 23)
	samples := make([]stream.Sample, n)
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}

	in, err := faults.Parse("latency=100us@1")
	if err != nil {
		t.Fatal(err)
	}
	if !in.TimingOnly() {
		t.Fatal("latency spec must be timing-only")
	}

	run := func(in *faults.Injector) (shard.Stats, []shard.PairEstimate, []float64) {
		mgr, err := shard.New(shard.Config{
			Dim: d, Shards: 2, Faults: in,
			Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 3}, T: n},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		if _, _, err := mgr.Ingest(samples); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Flush(); err != nil {
			t.Fatal(err)
		}
		st, err := mgr.Stats()
		if err != nil {
			t.Fatal(err)
		}
		top, err := mgr.TopKMagnitude(20)
		if err != nil {
			t.Fatal(err)
		}
		var ests []float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				e, err := mgr.EstimateC(i, j, shard.ConsistencyFresh)
				if err != nil {
					t.Fatal(err)
				}
				ests = append(ests, e)
			}
		}
		return st, top, ests
	}

	cleanSt, cleanTop, cleanEsts := run(nil)
	faultSt, faultTop, faultEsts := run(in)
	if in.Latencies.Load() == 0 {
		t.Fatal("latency fault never fired")
	}
	if cleanSt.Ops != faultSt.Ops || cleanSt.Step != faultSt.Step {
		t.Fatalf("op/step ledger diverges under timing-only faults: %+v vs %+v", cleanSt, faultSt)
	}
	if len(cleanTop) != len(faultTop) {
		t.Fatalf("topk lengths differ: %d vs %d", len(cleanTop), len(faultTop))
	}
	for i := range cleanTop {
		if cleanTop[i] != faultTop[i] {
			t.Fatalf("topk[%d] diverges under timing-only faults: %+v vs %+v", i, cleanTop[i], faultTop[i])
		}
	}
	for i := range cleanEsts {
		if cleanEsts[i] != faultEsts[i] {
			t.Fatalf("pair estimate %d diverges under timing-only faults: %v vs %v", i, cleanEsts[i], faultEsts[i])
		}
	}
}

// TestDropDupFaultsObserved: delivery faults actually fire, are
// counted by the injector, and the pipeline survives them — dropped
// and duplicated batches change the tables, never the liveness.
func TestDropDupFaultsObserved(t *testing.T) {
	in, err := faults.Parse("drop=0.2,dup=0.2,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := shard.New(shard.Config{
		Dim: 16, Shards: 2, Faults: in, FlushOps: 8,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 21}, T: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	samples := chaosSamples(16, 400)
	for i := range samples {
		if _, _, err := mgr.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	if in.Drops.Load() == 0 || in.Dups.Load() == 0 {
		t.Fatalf("delivery faults never fired: drops=%d dups=%d", in.Drops.Load(), in.Dups.Load())
	}
	if _, err := mgr.TopKMagnitude(5); err != nil {
		t.Fatalf("retrieval after delivery faults: %v", err)
	}
	st, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != len(samples) {
		t.Fatalf("step = %d, want %d (steps are assigned at admission, not delivery)", st.Step, len(samples))
	}
}

// TestTornSnapshotFailsClosedOverHTTP: a torn manifest committed by a
// faulted snapshot must make POST /v1/restore fail (500) while the old
// manager keeps serving at its current step — corruption never swaps
// in.
func TestTornSnapshotFailsClosedOverHTTP(t *testing.T) {
	in, err := faults.Parse("torn")
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	srv, ts := newChaosServer(t, in, shard.Config{QueueLen: 16}, server.Options{SnapshotDir: snapDir})
	samples := chaosSamples(16, 100)
	if resp := postIngest(t, ts.URL, samples); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if err := srv.Manager().Flush(); err != nil {
		t.Fatal(err)
	}
	stepBefore := srv.Manager().Step()

	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/restore", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("restore of torn snapshot: status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "corrupt") {
		t.Fatalf("restore error does not name the corruption: %s", body)
	}

	// The old manager is still the serving one, at the same step.
	if got := srv.Manager().Step(); got != stepBefore {
		t.Fatalf("step moved across a failed restore: %d -> %d", stepBefore, got)
	}
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("stats after failed restore: status %d", r2.StatusCode)
	}
}
