// Package chaostest is the chaos harness of the serving stack: it runs
// the HTTP server and the shard manager under injected faults
// (internal/faults) and asserts the robustness invariants the failure
// model promises — no deadlock, every request terminates within its
// deadline budget, shed accounting reconciles exactly with the 429s
// served, timing-only faults never change sketch state, and corrupt
// snapshots fail closed while the old manager keeps serving.
package chaostest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stream"
)

// budget is the hard per-request termination bound the harness
// enforces: far above any configured deadline, far below a hang.
const budget = 5 * time.Second

func chaosSamples(d, n int) []stream.Sample {
	out := make([]stream.Sample, n)
	for i := range out {
		a := i % (d - 2)
		out[i] = stream.Sample{Idx: []int{a, a + 1, a + 2}, Val: []float64{1, -0.5, 2}}
	}
	return out
}

// newChaosServer builds a small 2-shard CS server with the given
// injector and options. The injector's stalls are released in cleanup
// before the manager closes, so a failing test never deadlocks
// teardown.
func newChaosServer(t *testing.T, in *faults.Injector, cfg shard.Config, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg.Dim = 16
	cfg.Shards = 2
	cfg.Faults = in
	cfg.Engine = shard.EngineSpec{
		Kind:   shard.KindCS,
		Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 21},
		T:      1 << 20,
	}
	mgr, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(mgr, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		in.ReleaseStalls()
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postIngest(t *testing.T, base string, samples []stream.Sample) *http.Response {
	t.Helper()
	req := server.IngestRequest{Samples: make([]server.SampleJSON, len(samples))}
	for i, s := range samples {
		req.Samples[i] = server.SampleJSON{Idx: s.Idx, Val: s.Val}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func scrapeFamilies(t *testing.T, base string) obs.Families {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return fams
}

// TestStalledShardDeadlines is the tentpole acceptance drill: with one
// shard's worker stalled indefinitely, every query and every ingest
// bounded by a 100ms deadline must terminate as a 503 within budget —
// never hang — and the server's deadline accounting must match the
// 503s observed. After ReleaseStalls the backlog drains and the
// service recovers.
func TestStalledShardDeadlines(t *testing.T) {
	in, err := faults.Parse("stall=0")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newChaosServer(t, in, shard.Config{QueueLen: 8},
		server.Options{QueryTimeout: 100 * time.Millisecond, IngestTimeout: 100 * time.Millisecond})
	samples := chaosSamples(16, 64)

	// Feed batches until shard 0's worker has picked one up and parked.
	i := 0
	for in.Stalls.Load() == 0 && i < len(samples) {
		if resp := postIngest(t, ts.URL, samples[i:i+1]); resp.StatusCode != http.StatusOK &&
			resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("priming ingest %d: status %d", i, resp.StatusCode)
		}
		i++
	}
	if in.Stalls.Load() == 0 {
		t.Fatal("stall fault never fired")
	}

	deadline503 := 0
	for q := 0; q < 5; q++ {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/v1/topk?k=5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if el := time.Since(start); el > budget {
			t.Fatalf("query %d took %v against a stalled shard (budget %v)", q, el, budget)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("query %d against a stalled shard: status %d, want 503", q, resp.StatusCode)
		}
		deadline503++
	}

	// Keep ingesting until the stalled shard's FIFO is full and the
	// 100ms ingest deadline fires — it must 503 within budget too.
	sawIngest503 := false
	for r := 0; r < 64 && !sawIngest503; r++ {
		start := time.Now()
		resp := postIngest(t, ts.URL, samples[r%len(samples):r%len(samples)+1])
		if el := time.Since(start); el > budget {
			t.Fatalf("ingest %d took %v against a full stalled FIFO (budget %v)", r, el, budget)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawIngest503 = true
			deadline503++
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d", r, resp.StatusCode)
		}
	}
	if !sawIngest503 {
		t.Fatal("full-FIFO ingest never hit its deadline")
	}

	fams := scrapeFamilies(t, ts.URL)
	if got := fams["ascs_http_deadline_exceeded_total"].Sum; got != float64(deadline503) {
		t.Fatalf("ascs_http_deadline_exceeded_total = %v, want %d", got, deadline503)
	}

	// Recovery: release the stall, drain, and the same query succeeds.
	in.ReleaseStalls()
	okDeadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(ts.URL + "/v1/topk?k=5")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(okDeadline) {
			t.Fatalf("service did not recover after ReleaseStalls (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShedCountsMatch429s reconciles the three shed ledgers under the
// shed admission policy with a stalled shard: the 429s the client saw,
// the HTTP layer's ascs_http_shed_total, and the manager's
// ascs_shed_requests_total must agree exactly, and every 429 must
// carry a positive integral Retry-After.
func TestShedCountsMatch429s(t *testing.T) {
	in, err := faults.Parse("stall=0")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newChaosServer(t, in, shard.Config{QueueLen: 4, Admission: shard.AdmitShed}, server.Options{})
	samples := chaosSamples(16, 256)

	client429 := 0
	for i := range samples {
		resp := postIngest(t, ts.URL, samples[i:i+1])
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			client429++
			ra := resp.Header.Get("Retry-After")
			if ra == "" {
				t.Fatal("429 without Retry-After")
			}
			if !strings.ContainsAny(ra, "123456789") {
				t.Fatalf("Retry-After %q is not a positive duration", ra)
			}
		default:
			t.Fatalf("ingest %d: status %d", i, resp.StatusCode)
		}
		if client429 >= 20 {
			break
		}
	}
	if client429 == 0 {
		t.Fatal("stalled shard with a 4-deep queue never shed")
	}

	fams := scrapeFamilies(t, ts.URL)
	if got := fams["ascs_http_shed_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_http_shed_total = %v, want %d", got, client429)
	}
	if got := fams["ascs_shed_requests_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_shed_requests_total = %v, want %d", got, client429)
	}
	if got := fams["ascs_shard_admission_rejects_total"].Sum; got != float64(client429) {
		t.Fatalf("ascs_shard_admission_rejects_total = %v, want %d", got, client429)
	}
}

// TestTimingFaultsPreserveTables pins the state-integrity invariant:
// timing-only faults (latency spikes on every batch) may slow the
// pipeline but must never change what gets applied — the full query
// surface of a faulted run (every pair estimate, the top-k list, the
// op/step ledger) is bit-identical to an unfaulted reference fed the
// same stream.
func TestTimingFaultsPreserveTables(t *testing.T) {
	const d, n = 30, 500
	ds := dataset.Simulation(d, n, 0.02, 23)
	samples := make([]stream.Sample, n)
	for i, r := range ds.Rows {
		samples[i] = stream.FromDense(r)
	}

	in, err := faults.Parse("latency=100us@1")
	if err != nil {
		t.Fatal(err)
	}
	if !in.TimingOnly() {
		t.Fatal("latency spec must be timing-only")
	}

	run := func(in *faults.Injector) (shard.Stats, []shard.PairEstimate, []float64) {
		mgr, err := shard.New(shard.Config{
			Dim: d, Shards: 2, Faults: in,
			Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 4, Range: 1024, Seed: 3}, T: n},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		if _, _, err := mgr.Ingest(samples); err != nil {
			t.Fatal(err)
		}
		if err := mgr.Flush(); err != nil {
			t.Fatal(err)
		}
		st, err := mgr.Stats()
		if err != nil {
			t.Fatal(err)
		}
		top, err := mgr.TopKMagnitude(20)
		if err != nil {
			t.Fatal(err)
		}
		var ests []float64
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				e, err := mgr.EstimateC(i, j, shard.ConsistencyFresh)
				if err != nil {
					t.Fatal(err)
				}
				ests = append(ests, e)
			}
		}
		return st, top, ests
	}

	cleanSt, cleanTop, cleanEsts := run(nil)
	faultSt, faultTop, faultEsts := run(in)
	if in.Latencies.Load() == 0 {
		t.Fatal("latency fault never fired")
	}
	if cleanSt.Ops != faultSt.Ops || cleanSt.Step != faultSt.Step {
		t.Fatalf("op/step ledger diverges under timing-only faults: %+v vs %+v", cleanSt, faultSt)
	}
	if len(cleanTop) != len(faultTop) {
		t.Fatalf("topk lengths differ: %d vs %d", len(cleanTop), len(faultTop))
	}
	for i := range cleanTop {
		if cleanTop[i] != faultTop[i] {
			t.Fatalf("topk[%d] diverges under timing-only faults: %+v vs %+v", i, cleanTop[i], faultTop[i])
		}
	}
	for i := range cleanEsts {
		if cleanEsts[i] != faultEsts[i] {
			t.Fatalf("pair estimate %d diverges under timing-only faults: %v vs %v", i, cleanEsts[i], faultEsts[i])
		}
	}
}

// TestDropDupFaultsObserved: delivery faults actually fire, are
// counted by the injector, and the pipeline survives them — dropped
// and duplicated batches change the tables, never the liveness.
func TestDropDupFaultsObserved(t *testing.T) {
	in, err := faults.Parse("drop=0.2,dup=0.2,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := shard.New(shard.Config{
		Dim: 16, Shards: 2, Faults: in, FlushOps: 8,
		Engine: shard.EngineSpec{Kind: shard.KindCS, Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 21}, T: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	samples := chaosSamples(16, 400)
	for i := range samples {
		if _, _, err := mgr.Ingest(samples[i : i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		t.Fatal(err)
	}
	if in.Drops.Load() == 0 || in.Dups.Load() == 0 {
		t.Fatalf("delivery faults never fired: drops=%d dups=%d", in.Drops.Load(), in.Dups.Load())
	}
	if _, err := mgr.TopKMagnitude(5); err != nil {
		t.Fatalf("retrieval after delivery faults: %v", err)
	}
	st, err := mgr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != len(samples) {
		t.Fatalf("step = %d, want %d (steps are assigned at admission, not delivery)", st.Step, len(samples))
	}
}

// TestTornSnapshotFailsClosedOverHTTP: a torn manifest committed by a
// faulted snapshot must make POST /v1/restore fail (500) while the old
// manager keeps serving at its current step — corruption never swaps
// in.
func TestTornSnapshotFailsClosedOverHTTP(t *testing.T) {
	in, err := faults.Parse("torn")
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	srv, ts := newChaosServer(t, in, shard.Config{QueueLen: 16}, server.Options{SnapshotDir: snapDir})
	samples := chaosSamples(16, 100)
	if resp := postIngest(t, ts.URL, samples); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if err := srv.Manager().Flush(); err != nil {
		t.Fatal(err)
	}
	stepBefore := srv.Manager().Step()

	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/restore", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("restore of torn snapshot: status %d (%s), want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "corrupt") {
		t.Fatalf("restore error does not name the corruption: %s", body)
	}

	// The old manager is still the serving one, at the same step.
	if got := srv.Manager().Step(); got != stepBefore {
		t.Fatalf("step moved across a failed restore: %d -> %d", stepBefore, got)
	}
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("stats after failed restore: status %d", r2.StatusCode)
	}
}

// walChaosConfig is the manager shape shared by the WAL chaos drills
// (and by their clean reference runs, which leave the WAL fields empty).
func walChaosConfig() shard.Config {
	return shard.Config{
		Dim: 16, Shards: 2,
		Engine: shard.EngineSpec{
			Kind:   shard.KindCS,
			Sketch: countsketch.Config{Tables: 3, Range: 512, Seed: 21},
			T:      1 << 20,
		},
	}
}

// waitWALQuiescent polls until every teed record has been appended by
// the group-commit loop, then gives the trailing group fsync a moment —
// after this, the on-disk log holds the manager's full ingest history.
func waitWALQuiescent(t *testing.T, mgr *shard.Manager) *shard.WALStats {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		ws := mgr.WALStats()
		if ws != nil && ws.Armed && ws.Records == ws.LastSeq && ws.LastSeq > 0 {
			time.Sleep(100 * time.Millisecond)
			return mgr.WALStats()
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL never quiesced: %+v", ws)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWALKillRecoveryEquivalence is the tentpole chaos invariant: kill
// a WAL-armed manager mid-flight with no shutdown at all (the manager
// is simply abandoned, never Closed — no final flush, no final sync)
// and a fresh manager booted on the same log must reconstruct state
// bit-identical to a clean run of the same stream.
func TestWALKillRecoveryEquivalence(t *testing.T) {
	samples := chaosSamples(16, 600)

	clean, err := shard.New(walChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	walDir := t.TempDir()
	cfg := walChaosConfig()
	cfg.WALDir, cfg.WALSync = walDir, "batch"
	victim, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The victim is deliberately never Closed before recovery: Close
	// would flush and final-sync, which a SIGKILL does not get to do.
	// Cleanup closes it only after the test body is done.
	t.Cleanup(func() { victim.Close() })

	for _, m := range []*shard.Manager{clean, victim} {
		for lo := 0; lo < len(samples); lo += 25 {
			if _, _, err := m.Ingest(samples[lo : lo+25]); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ws := waitWALQuiescent(t, victim)
	if ws.Fsyncs == 0 {
		t.Fatalf("sync=batch never fsynced: %+v", ws)
	}

	recovered, err := shard.New(cfg)
	if err != nil {
		t.Fatalf("recovery boot: %v", err)
	}
	defer recovered.Close()
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	rs := recovered.WALStats()
	if rs.Recovery.ReplayedRecords != ws.Records {
		t.Fatalf("replayed %d of %d durable records", rs.Recovery.ReplayedRecords, ws.Records)
	}

	if cs, gs := clean.Step(), recovered.Step(); cs != gs {
		t.Fatalf("recovered Step = %d, clean run = %d", gs, cs)
	}
	cleanTop, err := clean.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	recTop, err := recovered.TopKMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanTop) != len(recTop) {
		t.Fatalf("topk lengths differ: %d vs %d", len(cleanTop), len(recTop))
	}
	for i := range cleanTop {
		if cleanTop[i] != recTop[i] {
			t.Fatalf("topk[%d] differs after recovery: %+v vs %+v", i, cleanTop[i], recTop[i])
		}
	}
	for _, p := range cleanTop {
		ce, err := clean.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		re, err := recovered.EstimateKey(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		if ce != re {
			t.Fatalf("estimate for key %d differs after recovery: %v vs %v", p.Key, ce, re)
		}
	}
}

// TestWALTornTailBoundedLoss pins the RPO bound: a crash that tears the
// last WAL record (injected at Close) loses exactly that record — the
// replay recovers every earlier one and reports the tear.
func TestWALTornTailBoundedLoss(t *testing.T) {
	in, err := faults.Parse("waltorn")
	if err != nil {
		t.Fatal(err)
	}
	walDir := t.TempDir()
	cfg := walChaosConfig()
	cfg.WALDir, cfg.WALSync, cfg.Faults = walDir, "batch", in
	victim, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := chaosSamples(16, 200)
	for lo := 0; lo < len(samples); lo += 25 {
		if _, _, err := victim.Ingest(samples[lo : lo+25]); err != nil {
			t.Fatal(err)
		}
	}
	if err := victim.Flush(); err != nil {
		t.Fatal(err)
	}
	appended := waitWALQuiescent(t, victim).Records
	if err := victim.Close(); err != nil { // waltorn chops the tail here
		t.Fatal(err)
	}

	cfg.Faults = nil
	recovered, err := shard.New(cfg)
	if err != nil {
		t.Fatalf("recovery from a torn tail must repair, not fail: %v", err)
	}
	defer recovered.Close()
	rs := recovered.WALStats().Recovery
	if !rs.Torn || rs.TornBytes == 0 {
		t.Fatalf("recovery did not report the torn tail: %+v", rs)
	}
	if rs.ReplayedRecords != appended-1 {
		t.Fatalf("torn-tail loss not bounded to the last record: replayed %d of %d", rs.ReplayedRecords, appended)
	}
	if recovered.Step() == 0 {
		t.Fatal("recovered manager lost the durable prefix entirely")
	}
}

// TestFaultsFiredFamilyExposed: /metrics carries the per-kind
// ascs_faults_fired_total family with the full stable label set and the
// WAL serving families, and observed fires show up as counts.
func TestFaultsFiredFamilyExposed(t *testing.T) {
	in, err := faults.Parse("latency=100us@1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newChaosServer(t, in, shard.Config{QueueLen: 16},
		server.Options{RestoreOverrides: shard.RestoreOverrides{Faults: in}})
	if resp := postIngest(t, ts.URL, chaosSamples(16, 50)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	fams := scrapeFamilies(t, ts.URL)
	fired, ok := fams["ascs_faults_fired_total"]
	if !ok {
		t.Fatal("ascs_faults_fired_total family missing")
	}
	if fired.Count != 9 {
		t.Fatalf("ascs_faults_fired_total exposes %d kinds, want all 9", fired.Count)
	}
	if fired.Sum == 0 {
		t.Fatal("latency fires did not reach the fired family")
	}
	// WAL families are present (at zero: this server runs without a WAL).
	for _, name := range []string{"ascs_wal_armed", "ascs_wal_records_total", "ascs_wal_replay_records_total"} {
		if fam, ok := fams[name]; !ok || fam.Count != 1 || fam.Sum != 0 {
			t.Fatalf("%s family = %+v (present %v), want a single zero sample", name, fam, ok)
		}
	}
}
