// Quickstart: sketch a stream with a sparse correlation structure and
// recover the strongly correlated feature pairs with ASCS, comparing
// against a vanilla Count Sketch at the same memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"

	ascs "repro"
)

func main() {
	const (
		dim     = 400
		samples = 2000
		memory  = 12_000 // float64 cells ≈ 2% of the 79,800 pairs
		topK    = 20
	)

	// The paper's §6.2 simulation: 0.5% of pairs carry correlations in
	// [0.5, 1], everything else is independent.
	ds := dataset.Simulation(dim, samples, 0.005, 42)
	truth, err := ds.Corr()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d features, %d samples, %d candidate pairs\n",
		dim, samples, dim*(dim-1)/2)

	for _, engine := range []ascs.EngineKind{ascs.EngineCS, ascs.EngineASCS} {
		est, err := ascs.NewEstimator(ascs.Config{
			Dim:          dim,
			Samples:      samples,
			MemoryFloats: memory,
			Alpha:        0.005,
			Engine:       engine,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range ds.Rows {
			if err := est.ObserveDense(row); err != nil {
				log.Fatal(err)
			}
		}
		top, err := est.Top(topK)
		if err != nil {
			log.Fatal(err)
		}
		meanTrue := 0.0
		for _, p := range top {
			meanTrue += truth.At(p.A, p.B)
		}
		meanTrue /= float64(len(top))
		fmt.Printf("\n%-5s sketch (%d bytes): mean true correlation of top %d = %.3f\n",
			engine, est.MemoryBytes(), topK, meanTrue)
		if s := est.Schedule(); s.T > 0 {
			fmt.Printf("      %s\n", s)
		}
		for i, p := range top[:5] {
			fmt.Printf("      #%d  features (%d,%d)  estimated %.3f  true %.3f\n",
				i+1, p.A, p.B, p.Estimate, truth.At(p.A, p.B))
		}
	}
}
