// Correlated-term mining over a sparse text stream — the text /
// click-through motivation of the paper's introduction. Documents are
// sparse term-frequency vectors; terms from the same topic co-occur and
// thus correlate. ASCS finds those term pairs in one pass over the
// stream while holding a sketch that is a small fraction of the
// 124,750-entry correlation matrix, using the sparse Observe path (only
// non-zero terms are touched, the §5 zero-skip).
//
// Run with: go run ./examples/textcorr
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	ascs "repro"
)

const (
	vocab   = 500
	topics  = 40
	perTop  = 8 // words per topic
	docs    = 8000
	bgWords = 6
)

func main() {
	rng := rand.New(rand.NewSource(99))
	est, err := ascs.NewEstimator(ascs.Config{
		Dim:          vocab,
		Samples:      docs,
		MemoryFloats: 10_000,
		Alpha:        float64(topics*perTop*(perTop-1)/2) / float64(vocab*(vocab-1)/2),
		Engine:       ascs.EngineASCS,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}

	sameTopic := func(a, b int) bool {
		return a < topics*perTop && b < topics*perTop && a/perTop == b/perTop
	}

	// Stream sparse documents: 1-2 topics fire their word sets, plus
	// background words.
	for t := 0; t < docs; t++ {
		tf := map[int]float64{}
		nTop := 1 + rng.Intn(2)
		for k := 0; k < nTop; k++ {
			topic := rng.Intn(topics)
			for wIdx := 0; wIdx < perTop; wIdx++ {
				if rng.Float64() < 0.75 {
					tf[topic*perTop+wIdx] = 1 + float64(rng.Intn(3))
				}
			}
		}
		for b := 0; b < bgWords; b++ {
			tf[rng.Intn(vocab)] = 1
		}
		idx := make([]int, 0, len(tf))
		for w := range tf {
			idx = append(idx, w)
		}
		sort.Ints(idx)
		val := make([]float64, len(idx))
		for i, w := range idx {
			val[i] = tf[w]
		}
		if err := est.Observe(idx, val); err != nil {
			log.Fatal(err)
		}
	}

	const report = 40
	top, err := est.Top(report)
	if err != nil {
		log.Fatal(err)
	}
	topical := 0
	for _, p := range top {
		if sameTopic(p.A, p.B) {
			topical++
		}
	}
	fmt.Printf("vocabulary=%d documents=%d sketch=%d bytes\n", vocab, docs, est.MemoryBytes())
	fmt.Printf("schedule: %s\n", est.Schedule())
	fmt.Printf("top %d term pairs: %d/%d from a shared topic\n\n", report, topical, report)
	for i, p := range top[:12] {
		tag := "cross-topic"
		if sameTopic(p.A, p.B) {
			tag = fmt.Sprintf("topic %d", p.A/perTop)
		}
		fmt.Printf("  #%-3d term%-4d — term%-4d  score %.3f  [%s]\n", i+1, p.A, p.B, p.Estimate, tag)
	}
}
