// DNA k-mer correlation mining — a scaled-down run of the paper's
// Table 2 headline experiment. Reads are generated with planted motifs
// (the paper's own DNA dataset is generated with c=1, k=12, L=200,
// seed=42; here k is reduced so the pair universe fits a laptop while
// still being far too large to materialize: k=8 gives 65,536 features
// and ~2.1 billion pairs). ASCS and vanilla CS sketch the identical
// stream at the same memory; the top reported pairs are then verified
// with an exact second pass.
//
// Run with: go run ./examples/dnakmer
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/eval"

	ascs "repro"
)

func main() {
	cfg := dataset.DNAConfig{
		K: 7, ReadLen: 100, Motifs: 40, MotifLen: 15, MotifProb: 0.5, Seed: 42,
	}
	const (
		reads  = 5000
		memory = 1 << 19 // float64 cells: ~250x compression of the 1.3e8 pairs
		topK   = 100
	)
	d := cfg.Dim()
	nSig := len(cfg.SignalPairs())
	fmt.Printf("k=%d features=%d pairs=%.2e planted motif pairs=%d reads=%d\n",
		cfg.K, d, float64(d)*float64(d-1)/2, nSig, reads)

	for _, engine := range []ascs.EngineKind{ascs.EngineCS, ascs.EngineASCS} {
		est, err := ascs.NewEstimator(ascs.Config{
			Dim: d, Samples: reads, MemoryFloats: memory,
			Alpha:  float64(nSig) / (float64(d) * float64(d-1) / 2),
			Engine: engine, Seed: 3,
			// Ultra-sparse pairs need a longer warm-up for the μ̂
			// percentiles to separate signals from co-occurrence flukes.
			WarmupFraction: 0.1,
		})
		if err != nil {
			log.Fatal(err)
		}
		src, err := cfg.NewSource(reads)
		if err != nil {
			log.Fatal(err)
		}
		for {
			s, ok := src.Next()
			if !ok {
				break
			}
			// Presence/absence profile: binarizing k-mer counts keeps the
			// standardized second moment a faithful correlation proxy
			// (repeat-heavy reads would otherwise inflate it).
			ones := make([]float64, len(s.Idx))
			for i := range ones {
				ones[i] = 1
			}
			if err := est.Observe(s.Idx, ones); err != nil {
				log.Fatal(err)
			}
		}
		top, err := est.Top(topK)
		if err != nil {
			log.Fatal(err)
		}

		// Exact verification pass over a regenerated stream.
		var prs []dataset.PairRef
		for _, p := range top {
			prs = append(prs, dataset.PairRef{A: p.A, B: p.B})
		}
		fresh, err := cfg.NewSource(reads)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := eval.ExactPairCorr(fresh, prs)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, pr := range prs {
			mean += exact[pr]
		}
		mean /= float64(len(prs))
		fmt.Printf("\n%-5s (%d bytes): mean exact correlation of top %d reported pairs = %.3f\n",
			engine, est.MemoryBytes(), topK, mean)
		for i, p := range top[:5] {
			fmt.Printf("      #%d  %s — %s  est %.3f  exact %.3f\n",
				i+1, kmerString(p.A, cfg.K), kmerString(p.B, cfg.K),
				p.Estimate, exact[dataset.PairRef{A: p.A, B: p.B}])
		}
	}
}

// kmerString renders a k-mer code as bases.
func kmerString(code, k int) string {
	const bases = "ACGT"
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = bases[code&3]
		code >>= 2
	}
	return string(out)
}
