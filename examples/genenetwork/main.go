// Gene association network discovery — the paper's opening motivation:
// genes from the same pathway are strongly co-expressed, so the large
// entries of the gene-gene correlation matrix reveal pathway structure
// (Schäfer & Strimmer 2005). This example simulates expression profiles
// with planted pathways, streams them through ASCS once, and
// reconstructs the pathway edges, reporting precision/recall against
// the planted network.
//
// Run with: go run ./examples/genenetwork
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	ascs "repro"
)

const (
	genes    = 600
	pathways = 30
	perPath  = 5 // genes per pathway
	arrays   = 3000
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Pathway memberships: gene g belongs to pathway g/perPath for the
	// first pathways*perPath genes; the rest are unregulated.
	inPathway := func(g int) int {
		if g < pathways*perPath {
			return g / perPath
		}
		return -1
	}
	isEdge := func(a, b int) bool {
		pa, pb := inPathway(a), inPathway(b)
		return pa >= 0 && pa == pb
	}
	totalEdges := pathways * perPath * (perPath - 1) / 2

	est, err := ascs.NewEstimator(ascs.Config{
		Dim:          genes,
		Samples:      arrays,
		MemoryFloats: 18_000, // ≈ 10% of the 179,700 gene pairs
		Alpha:        float64(totalEdges) / float64(genes*(genes-1)/2),
		Engine:       ascs.EngineASCS,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream microarray-like samples: pathway activity drives member
	// expression (log-scale), with per-gene noise and batch effects.
	expr := make([]float64, genes)
	for t := 0; t < arrays; t++ {
		batch := 0.2 * rng.NormFloat64() // global batch effect
		activity := make([]float64, pathways)
		for p := range activity {
			activity[p] = rng.NormFloat64()
		}
		for g := 0; g < genes; g++ {
			base := batch + 0.6*rng.NormFloat64()
			if p := inPathway(g); p >= 0 {
				base += 0.9 * activity[p]
			}
			expr[g] = base
		}
		if err := est.ObserveDense(expr); err != nil {
			log.Fatal(err)
		}
	}

	top, err := est.Top(totalEdges)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, e := range top {
		if isEdge(e.A, e.B) {
			hits++
		}
	}
	precision := float64(hits) / float64(len(top))
	recall := float64(hits) / float64(totalEdges)

	fmt.Printf("genes=%d arrays=%d pathways=%d planted edges=%d\n",
		genes, arrays, pathways, totalEdges)
	fmt.Printf("sketch memory: %d bytes (vs %.1f MB for the dense matrix)\n",
		est.MemoryBytes(), float64(genes*(genes-1)/2*8)/(1<<20))
	fmt.Printf("recovered network: precision=%.3f recall=%.3f (F1=%.3f)\n",
		precision, recall, 2*precision*recall/math.Max(precision+recall, 1e-12))
	fmt.Println("\nstrongest inferred associations:")
	for i, e := range top[:10] {
		tag := "spurious"
		if isEdge(e.A, e.B) {
			tag = fmt.Sprintf("pathway %d", inPathway(e.A))
		}
		fmt.Printf("  #%-3d gene%-4d — gene%-4d  corr≈%.3f  [%s]\n", i+1, e.A, e.B, e.Estimate, tag)
	}
}
