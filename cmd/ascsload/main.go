// Command ascsload is a closed-loop load generator for the ascsd
// serving subsystem. It replays an internal/dataset stream against the
// HTTP API with C concurrent connections (optionally paced to a target
// request rate), mixes in live top-k queries, and reports ingest
// throughput plus latency percentiles.
//
// Two modes:
//
//	ascsload -addr http://localhost:8356 -synthetic simulation -dim 300 -samples 4000
//	    drive an externally started daemon.
//
//	ascsload -sweep 1,4,8 -out BENCH_server.json
//	    serving benchmark: for each shard count, start an in-process
//	    server (real HTTP over a loopback listener), replay the
//	    stream, and emit a machine-readable baseline so future PRs
//	    have a number to beat.
//
// The sweep records the environment (CPU count) alongside the numbers:
// shard scaling is a parallel speedup and cannot exceed the core count
// of the machine the benchmark ran on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/stream"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target daemon base URL (empty: in-process sweep mode)")
		sweep     = flag.String("sweep", "1,4,8", "comma-separated shard counts for in-process mode")
		synthetic = flag.String("synthetic", "simulation", "workload: simulation, gisette, epsilon, cifar10, rcv1, sector")
		dim       = flag.Int("dim", 160, "feature dimensionality")
		samples   = flag.Int("samples", 4000, "stream length")
		batch     = flag.Int("batch", 64, "samples per ingest request")
		conns     = flag.Int("conns", 4, "concurrent closed-loop ingest connections")
		qps       = flag.Float64("qps", 0, "target ingest requests/sec across all connections (0 = unpaced)")
		queriers  = flag.Int("queriers", 2, "concurrent top-k query workers during ingest")
		topk      = flag.Int("topk", 25, "k for the query workers")
		engine    = flag.String("engine", "cs", "engine for in-process mode: cs or ascs")
		window    = flag.Int("window", 0, "serve unbounded with this effective sample window (in-process mode; 0 = fixed horizon)")
		tables    = flag.Int("tables", 5, "hash tables per shard sketch (in-process mode)")
		rng       = flag.Int("range", 1<<14, "buckets per table per shard (in-process mode)")
		seedFlag  = flag.Int64("seed", 42, "workload seed")
		out       = flag.String("out", "BENCH_server.json", "output report path (in-process mode)")
	)
	flag.Parse()
	log.SetPrefix("ascsload: ")
	log.SetFlags(0)

	if *engine != "cs" && *engine != "ascs" {
		log.Fatalf("unknown engine %q (want cs or ascs)", *engine)
	}
	ds, err := dataset.ByName(*synthetic, dataset.Scale{Dim: *dim, Samples: *samples}, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	work := buildWorkload(ds, *batch)
	log.Printf("workload: %s dim=%d samples=%d offers/sample≈%.0f", ds.Name, *dim, len(ds.Rows), work.offersPerSample())

	loadCfg := loadConfig{
		conns: *conns, qps: *qps, queriers: *queriers, topk: *topk,
	}
	if *addr != "" {
		res := runLoad(*addr, work, loadCfg)
		res.Shards = -1 // unknown: external daemon
		res.print()
		return
	}

	var shardCounts []int
	for _, tok := range strings.Split(*sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			log.Fatalf("bad -sweep entry %q", tok)
		}
		shardCounts = append(shardCounts, n)
	}

	report := Report{
		Workload: WorkloadInfo{
			Dataset: ds.Name, Dim: *dim, Samples: len(ds.Rows),
			Batch: *batch, Conns: *conns, Queriers: *queriers, TopK: *topk,
			Engine: *engine, Tables: *tables, Range: *rng,
			OffersPerSample: work.offersPerSample(),
		},
		Env: EnvInfo{
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		},
	}
	for _, n := range shardCounts {
		res := runInProcess(n, *engine, *dim, *tables, *rng, *window, work, loadCfg)
		res.print()
		report.Runs = append(report.Runs, res)
	}
	if base := report.run(shardCounts[0]); base != nil {
		for _, n := range shardCounts[1:] {
			if r := report.run(n); r != nil && base.IngestOffersPerSec > 0 {
				report.Scaling = append(report.Scaling, ScalingEntry{
					Shards: n, Baseline: shardCounts[0],
					IngestSpeedup: r.IngestOffersPerSec / base.IngestOffersPerSec,
				})
			}
		}
	}
	maxShards := shardCounts[0]
	for _, n := range shardCounts {
		if n > maxShards {
			maxShards = n
		}
	}
	if report.Env.GOMAXPROCS < maxShards {
		report.Notes = fmt.Sprintf("shard scaling is a parallel speedup bounded by the core count: "+
			"this host exposes %d CPU(s) to the Go runtime, so the %d-shard run cannot exceed ~1x "+
			"the single-shard throughput here; re-run on a host with ≥%d cores to observe the shard speedup",
			report.Env.GOMAXPROCS, maxShards, maxShards)
		log.Print(report.Notes)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", *out)
}

// workload is the pre-encoded request stream: JSON bodies are built
// once so the generator measures the server, not the client encoder.
// Per-body sample/offer counts let throughput be computed over what
// the server actually accepted, not what the client attempted.
type workload struct {
	bodies       [][]byte
	sampleCounts []int
	offerCounts  []uint64
	samples      int
	offers       uint64
}

func (w workload) offersPerSample() float64 {
	if w.samples == 0 {
		return 0
	}
	return float64(w.offers) / float64(w.samples)
}

func buildWorkload(ds *dataset.Dataset, batch int) workload {
	var w workload
	rows := ds.Rows
	w.samples = len(rows)
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		req := server.IngestRequest{}
		var offers uint64
		for _, r := range rows[lo:hi] {
			s := stream.FromDense(r)
			m := uint64(s.NNZ())
			offers += m * (m - 1) / 2
			req.Samples = append(req.Samples, server.SampleJSON{Idx: s.Idx, Val: s.Val})
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		w.offers += offers
		w.bodies = append(w.bodies, body)
		w.sampleCounts = append(w.sampleCounts, hi-lo)
		w.offerCounts = append(w.offerCounts, offers)
	}
	return w
}

type loadConfig struct {
	conns    int
	qps      float64
	queriers int
	topk     int
}

// RunResult is one benchmark run (one shard count).
type RunResult struct {
	Shards              int     `json:"shards"`
	Transport           string  `json:"transport"`
	ElapsedSec          float64 `json:"elapsed_sec"`
	IngestRequests      int     `json:"ingest_requests"`
	IngestErrors        int     `json:"ingest_errors"`
	IngestSamplesPerSec float64 `json:"ingest_samples_per_sec"`
	IngestOffersPerSec  float64 `json:"ingest_offers_per_sec"`
	IngestP50MS         float64 `json:"ingest_p50_ms"`
	IngestP99MS         float64 `json:"ingest_p99_ms"`
	QueryCount          int     `json:"query_count"`
	QueryP50MS          float64 `json:"query_p50_ms"`
	QueryP99MS          float64 `json:"query_p99_ms"`
}

func (r RunResult) print() {
	log.Printf("shards=%d: %.0f samples/s (%.2e offers/s) over %.2fs; ingest p50=%.2fms p99=%.2fms; %d queries p50=%.2fms p99=%.2fms",
		r.Shards, r.IngestSamplesPerSec, r.IngestOffersPerSec, r.ElapsedSec,
		r.IngestP50MS, r.IngestP99MS, r.QueryCount, r.QueryP50MS, r.QueryP99MS)
}

// WorkloadInfo, EnvInfo, ScalingEntry, and Report form BENCH_server.json.
type WorkloadInfo struct {
	Dataset         string  `json:"dataset"`
	Dim             int     `json:"dim"`
	Samples         int     `json:"samples"`
	Batch           int     `json:"batch"`
	Conns           int     `json:"conns"`
	Queriers        int     `json:"queriers"`
	TopK            int     `json:"topk"`
	Engine          string  `json:"engine"`
	Tables          int     `json:"tables"`
	Range           int     `json:"range"`
	OffersPerSample float64 `json:"offers_per_sample"`
}

type EnvInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

type ScalingEntry struct {
	Shards        int     `json:"shards"`
	Baseline      int     `json:"baseline_shards"`
	IngestSpeedup float64 `json:"ingest_speedup"`
}

type Report struct {
	Workload WorkloadInfo   `json:"workload"`
	Env      EnvInfo        `json:"env"`
	Runs     []RunResult    `json:"runs"`
	Scaling  []ScalingEntry `json:"scaling,omitempty"`
	Notes    string         `json:"notes,omitempty"`
}

func (r *Report) run(shards int) *RunResult {
	for i := range r.Runs {
		if r.Runs[i].Shards == shards {
			return &r.Runs[i]
		}
	}
	return nil
}

// runInProcess starts a fresh sharded server on a loopback listener and
// replays the workload through real HTTP.
func runInProcess(shards int, engine string, dim, tables, rng, window int, work workload, cfg loadConfig) RunResult {
	kind := shard.KindCS
	if engine == "ascs" {
		kind = shard.KindASCS
	}
	// Same derivation rules as ascs.NewSharded and the ascsd daemon
	// (mem→range, warm-up sizing, window→λ) via the one shared helper.
	mgr, err := shard.NewFromOptions(shard.ServeOptions{
		Dim:     dim,
		Samples: work.samples,
		Window:  window,
		Shards:  shards,
		Kind:    kind,
		Tables:  tables,
		Range:   rng,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(mgr, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	res := runLoad(ts.URL, work, cfg)
	res.Shards = shards
	return res
}

// runLoad replays the workload closed-loop: every connection sends its
// next batch, waits for the response, repeats; query workers hammer
// /v1/topk concurrently until ingest completes.
func runLoad(base string, work workload, cfg loadConfig) RunResult {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.conns + cfg.queriers}}
	var (
		next       atomic.Int64
		errCount   atomic.Int64
		okSamples  atomic.Int64
		okOffers   atomic.Uint64
		ingestLats = make([][]float64, cfg.conns)
		queryLats  = make([][]float64, cfg.queriers)
		qCount     atomic.Int64
		stop       = make(chan struct{})
		wg, qwg    sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= len(work.bodies) {
					return
				}
				if cfg.qps > 0 {
					// Open-loop pacing on top of the closed loop: request i
					// is released no earlier than its schedule slot.
					due := start.Add(time.Duration(float64(i) / cfg.qps * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/ingest", "application/json", bytes.NewReader(work.bodies[i]))
				lat := time.Since(t0)
				if err != nil {
					errCount.Add(1)
					continue
				}
				// Drain before Close so the keep-alive connection is
				// reusable; otherwise every request pays connection setup.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
					continue
				}
				okSamples.Add(int64(work.sampleCounts[i]))
				okOffers.Add(work.offerCounts[i])
				ingestLats[c] = append(ingestLats[c], float64(lat)/float64(time.Millisecond))
			}
		}(c)
	}
	for q := 0; q < cfg.queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			url := fmt.Sprintf("%s/v1/topk?k=%d&magnitude=1", base, cfg.topk)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				lat := time.Since(t0)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 503 while warming is expected; count only live queries.
				if resp.StatusCode == http.StatusOK {
					queryLats[q] = append(queryLats[q], float64(lat)/float64(time.Millisecond))
					qCount.Add(1)
				}
			}
		}(q)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	qwg.Wait()

	var ingestAll, queryAll []float64
	for _, l := range ingestLats {
		ingestAll = append(ingestAll, l...)
	}
	for _, l := range queryLats {
		queryAll = append(queryAll, l...)
	}
	sort.Float64s(ingestAll)
	sort.Float64s(queryAll)
	res := RunResult{
		Transport:      "http",
		ElapsedSec:     elapsed.Seconds(),
		IngestRequests: len(work.bodies),
		IngestErrors:   int(errCount.Load()),
		QueryCount:     int(qCount.Load()),
	}
	if elapsed > 0 {
		// Throughput counts only samples the server accepted (200s);
		// errored requests must not inflate the recorded baseline.
		res.IngestSamplesPerSec = float64(okSamples.Load()) / elapsed.Seconds()
		res.IngestOffersPerSec = float64(okOffers.Load()) / elapsed.Seconds()
	}
	if len(ingestAll) > 0 {
		res.IngestP50MS = stats.QuantileSorted(ingestAll, 0.5)
		res.IngestP99MS = stats.QuantileSorted(ingestAll, 0.99)
	}
	if len(queryAll) > 0 {
		res.QueryP50MS = stats.QuantileSorted(queryAll, 0.5)
		res.QueryP99MS = stats.QuantileSorted(queryAll, 0.99)
	}
	return res
}
