// Command ascsload is a closed-loop load generator for the ascsd
// serving subsystem. It replays an internal/dataset stream against the
// HTTP API with C concurrent connections (optionally paced to a target
// request rate), mixes in live top-k queries, and reports ingest
// throughput plus latency percentiles.
//
// Two modes:
//
//	ascsload -addr http://localhost:8356 -synthetic simulation -dim 300 -samples 4000
//	    drive an externally started daemon.
//
//	ascsload -sweep 1,4,8 -out BENCH_server.json
//	    serving benchmark: for each shard count, start an in-process
//	    server (real HTTP over a loopback listener), replay the
//	    stream, and emit a machine-readable baseline so future PRs
//	    have a number to beat. Unless -mixed=false, the sweep is
//	    followed by a mixed-workload arm: the same ingest-saturation
//	    loop with queriers pinned to the fresh lane and then to the
//	    fast (priority) lane, recording query p50/p99 with the lane
//	    off vs on.
//
// Latency accounting: ingest percentiles are reported both as service
// time (send → response) and as response time measured from the -qps
// schedule slot, so a paced run cannot hide client-side backlog behind
// the pacing sleep (coordinated omission). Query workers count
// transport errors, non-200s, and warm-up 503s instead of silently
// dropping them.
//
// The sweep records the environment (CPU count) alongside the numbers:
// shard scaling is a parallel speedup and cannot exceed the core count
// of the machine the benchmark ran on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/stream"
)

func main() {
	var (
		addr        = flag.String("addr", "", "target daemon base URL (empty: in-process sweep mode)")
		sweep       = flag.String("sweep", "1,4,8", "comma-separated shard counts for in-process mode")
		synthetic   = flag.String("synthetic", "simulation", "workload: simulation, gisette, epsilon, cifar10, rcv1, sector")
		dim         = flag.Int("dim", 160, "feature dimensionality")
		samples     = flag.Int("samples", 4000, "stream length")
		batch       = flag.Int("batch", 64, "samples per ingest request")
		conns       = flag.Int("conns", 4, "concurrent closed-loop ingest connections")
		qps         = flag.Float64("qps", 0, "target ingest requests/sec across all connections (0 = unpaced)")
		queriers    = flag.Int("queriers", 2, "concurrent top-k query workers during ingest")
		topk        = flag.Int("topk", 25, "k for the query workers")
		retries     = flag.Int("retries", 8, "max retries per shed (429) ingest request, honoring Retry-After with capped exponential backoff + jitter; 0 disables")
		consistency = flag.String("consistency", "", "query lane the query workers request (?consistency=): fresh, fast, or empty for the server default")
		mixed       = flag.Bool("mixed", true, "in-process mode: after the sweep, run the mixed ingest-saturation arm twice (query lane fresh vs fast) and record both")
		engine      = flag.String("engine", "cs", "engine for in-process mode: cs or ascs")
		window      = flag.Int("window", 0, "serve unbounded with this effective sample window (in-process mode; 0 = fixed horizon)")
		tables      = flag.Int("tables", 5, "hash tables per shard sketch (in-process mode)")
		rng         = flag.Int("range", 1<<14, "buckets per table per shard (in-process mode)")
		seedFlag    = flag.Int64("seed", 42, "workload seed")
		out         = flag.String("out", "BENCH_server.json", "output report path (in-process mode)")
	)
	flag.Parse()
	log.SetPrefix("ascsload: ")
	log.SetFlags(0)

	if *engine != "cs" && *engine != "ascs" {
		log.Fatalf("unknown engine %q (want cs or ascs)", *engine)
	}
	if _, err := shard.ParseConsistency(*consistency); err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*synthetic, dataset.Scale{Dim: *dim, Samples: *samples}, *seedFlag)
	if err != nil {
		log.Fatal(err)
	}
	work := buildWorkload(ds, *batch)
	log.Printf("workload: %s dim=%d samples=%d offers/sample≈%.0f", ds.Name, *dim, len(ds.Rows), work.offersPerSample())

	loadCfg := loadConfig{
		conns: *conns, qps: *qps, queriers: *queriers, topk: *topk,
		consistency: *consistency, retries: *retries,
	}
	if *addr != "" {
		res := runLoad(*addr, work, loadCfg)
		res.Shards = -1 // unknown: external daemon
		res.print()
		return
	}

	var shardCounts []int
	for _, tok := range strings.Split(*sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			log.Fatalf("bad -sweep entry %q", tok)
		}
		shardCounts = append(shardCounts, n)
	}

	report := Report{
		Workload: WorkloadInfo{
			Dataset: ds.Name, Dim: *dim, Samples: len(ds.Rows),
			Batch: *batch, Conns: *conns, Queriers: *queriers, TopK: *topk,
			Engine: *engine, Tables: *tables, Range: *rng,
			OffersPerSample: work.offersPerSample(),
		},
		Env: EnvInfo{
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		},
	}
	for _, n := range shardCounts {
		res := runInProcess(n, *engine, *dim, *tables, *rng, *window, work, loadCfg)
		res.print()
		report.Runs = append(report.Runs, res)
	}
	if base := report.run(shardCounts[0]); base != nil {
		for _, n := range shardCounts[1:] {
			if r := report.run(n); r != nil && base.IngestOffersPerSec > 0 {
				report.Scaling = append(report.Scaling, ScalingEntry{
					Shards: n, Baseline: shardCounts[0],
					IngestSpeedup: r.IngestOffersPerSec / base.IngestOffersPerSec,
				})
			}
		}
	}
	if *mixed {
		// Mixed-workload arm: same closed-loop ingest saturation plus
		// queriers, once per query lane, so BENCH_server.json records
		// query p99 under ingest pressure with the priority lane off
		// ("fresh") vs on ("fast") on the same host. Run at the smallest
		// shard count: fewer shards concentrate the per-shard queue, the
		// exact regime the lane exists for.
		mcfg := loadCfg
		if mcfg.queriers < 1 {
			mcfg.queriers = 2
			log.Printf("mixed arm: -queriers %d has no query side to measure; using %d query workers (recorded per run)", loadCfg.queriers, mcfg.queriers)
		}
		minShards := shardCounts[0]
		for _, n := range shardCounts {
			if n < minShards {
				minShards = n
			}
		}
		for _, lane := range []string{"fresh", "fast"} {
			mcfg.consistency = lane
			res := runInProcess(minShards, *engine, *dim, *tables, *rng, *window, work, mcfg)
			res.print()
			report.Mixed = append(report.Mixed, res)
		}
	}
	maxShards := shardCounts[0]
	for _, n := range shardCounts {
		if n > maxShards {
			maxShards = n
		}
	}
	if report.Env.GOMAXPROCS < maxShards {
		report.Notes = fmt.Sprintf("shard scaling is a parallel speedup bounded by the core count: "+
			"this host exposes %d CPU(s) to the Go runtime, so the %d-shard run cannot exceed ~1x "+
			"the single-shard throughput here; re-run on a host with ≥%d cores to observe the shard speedup",
			report.Env.GOMAXPROCS, maxShards, maxShards)
		log.Print(report.Notes)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", *out)
}

// workload is the pre-encoded request stream: JSON bodies are built
// once so the generator measures the server, not the client encoder.
// Per-body sample/offer counts let throughput be computed over what
// the server actually accepted, not what the client attempted.
type workload struct {
	bodies       [][]byte
	sampleCounts []int
	offerCounts  []uint64
	samples      int
	offers       uint64
}

func (w workload) offersPerSample() float64 {
	if w.samples == 0 {
		return 0
	}
	return float64(w.offers) / float64(w.samples)
}

func buildWorkload(ds *dataset.Dataset, batch int) workload {
	var w workload
	rows := ds.Rows
	w.samples = len(rows)
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		req := server.IngestRequest{}
		var offers uint64
		for _, r := range rows[lo:hi] {
			s := stream.FromDense(r)
			m := uint64(s.NNZ())
			offers += m * (m - 1) / 2
			req.Samples = append(req.Samples, server.SampleJSON{Idx: s.Idx, Val: s.Val})
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		w.offers += offers
		w.bodies = append(w.bodies, body)
		w.sampleCounts = append(w.sampleCounts, hi-lo)
		w.offerCounts = append(w.offerCounts, offers)
	}
	return w
}

type loadConfig struct {
	conns    int
	qps      float64
	queriers int
	topk     int
	// consistency is the lane the query workers request per call
	// (?consistency=); empty leaves the server default in charge.
	consistency string
	// retries caps the per-request retry budget for shed (429) ingest
	// responses.
	retries int
}

// Backoff bounds for shed retries: capped exponential with full
// jitter, overridden by the server's Retry-After when present.
const (
	baseBackoff = 25 * time.Millisecond
	maxBackoff  = 2 * time.Second
)

// retryDelay returns how long to wait before retry attempt+1: the
// server's Retry-After verbatim when it sent one (the server knows its
// drain rate; second-guessing it re-creates the stampede it exists to
// spread), otherwise capped exponential backoff with jitter in
// [d/2, 3d/2) so shed connections don't re-arrive in lockstep.
func retryDelay(attempt int, retryAfter string) time.Duration {
	if sec, err := strconv.Atoi(retryAfter); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	d := baseBackoff << uint(attempt)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// RunResult is one benchmark run (one shard count, one query lane).
type RunResult struct {
	Shards int `json:"shards"`
	// QueryConsistency is the lane the query workers requested (empty:
	// the server default, which is fresh); Queriers is the actual query
	// worker count of this run — the mixed arm forces it to ≥ 1 even
	// when -queriers is 0, so the per-run value, not the workload
	// block's flag value, is what reproduces the run.
	QueryConsistency string  `json:"query_consistency,omitempty"`
	Queriers         int     `json:"queriers"`
	Transport        string  `json:"transport"`
	ElapsedSec       float64 `json:"elapsed_sec"`
	IngestRequests   int     `json:"ingest_requests"`
	IngestErrors     int     `json:"ingest_errors"`
	// IngestShed counts 429 responses (each a refused-whole request the
	// server asked the client to retry); IngestRetries counts the
	// re-sends the backoff loop actually issued. IngestDeadlineExceeded
	// counts 503s on ingest — never retried, because delivery may have
	// been partial and a blind replay would double-apply the shipped
	// prefix. All three are separate from IngestErrors so a shed-heavy
	// run reads as overload, not as failure.
	IngestShed             int     `json:"ingest_shed,omitempty"`
	IngestRetries          int     `json:"ingest_retries,omitempty"`
	IngestDeadlineExceeded int     `json:"ingest_deadline_exceeded,omitempty"`
	IngestSamplesPerSec    float64 `json:"ingest_samples_per_sec"`
	IngestOffersPerSec     float64 `json:"ingest_offers_per_sec"`
	// Service time: request send → response, excluding any client-side
	// wait for the -qps schedule slot.
	IngestP50MS float64 `json:"ingest_p50_ms"`
	IngestP99MS float64 `json:"ingest_p99_ms"`
	// Response time: scheduled slot → response. Under -qps pacing this
	// includes the backlog a server that falls behind the schedule
	// pushes onto the client (the coordinated-omission correction);
	// unpaced closed-loop runs have response == service by definition.
	IngestRespP50MS float64 `json:"ingest_resp_p50_ms"`
	IngestRespP99MS float64 `json:"ingest_resp_p99_ms"`
	QueryCount      int     `json:"query_count"`
	// QueryErrors counts transport failures and non-200/non-503 query
	// responses; QueryWarming503 counts warm-up 503s. Neither
	// contributes a latency sample, so both must be visible — a run
	// that errored half its queries cannot report a clean p99.
	QueryErrors     int     `json:"query_errors"`
	QueryWarming503 int     `json:"query_warming_503"`
	QueryP50MS      float64 `json:"query_p50_ms"`
	QueryP99MS      float64 `json:"query_p99_ms"`
	// Server holds the /metrics counter deltas scraped around the run —
	// what the server says happened, next to what the client measured.
	// Absent when the target does not expose /metrics.
	Server *ServerCounters `json:"server,omitempty"`
}

// ServerCounters are summed-across-shards deltas of the daemon's
// /metrics page between the start and end of one run (high-water marks
// are the end-of-run peaks, not deltas — they only ratchet up).
type ServerCounters struct {
	IngestBatches float64 `json:"ingest_batches"`
	AdmittedMass  float64 `json:"admitted_mass"`
	RejectedMass  float64 `json:"rejected_mass"`
	LaneJumps     float64 `json:"lane_jumps"`
	// QueueHighWater / FastQueueHighWater: the deepest per-shard backlog
	// any shard reached, observed at enqueue (max across shards).
	QueueHighWater     float64 `json:"queue_high_water"`
	FastQueueHighWater float64 `json:"fast_queue_high_water"`
	WaveGroups         float64 `json:"wave_groups"`
	WaveFallbacks      float64 `json:"wave_fallbacks"`
	// Robustness deltas: the server's own shed/deadline accounting, to
	// reconcile against the client-side IngestShed / deadline counts.
	ShedRequests float64 `json:"shed_requests,omitempty"`
	HTTPShed     float64 `json:"http_shed,omitempty"`
	DeadlineOps  float64 `json:"deadline_ops,omitempty"`
	HTTPDeadline float64 `json:"http_deadline_exceeded,omitempty"`
}

// scrapeFamilies fetches and aggregates the target's /metrics page
// (nil when the target does not serve one — e.g. an older daemon).
func scrapeFamilies(client *http.Client, base string) obs.Families {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	fams, err := obs.Parse(resp.Body)
	if err != nil {
		log.Printf("parsing /metrics: %v", err)
		return nil
	}
	return fams
}

// counterDelta folds a before/after scrape pair into the recorded
// counters.
func counterDelta(before, after obs.Families) *ServerCounters {
	if before == nil || after == nil {
		return nil
	}
	d := func(name string) float64 { return after[name].Sum - before[name].Sum }
	return &ServerCounters{
		IngestBatches:      d("ascs_shard_ingest_batches_total"),
		AdmittedMass:       d("ascs_gate_admitted_mass_total"),
		RejectedMass:       d("ascs_gate_rejected_mass_total"),
		LaneJumps:          d("ascs_shard_lane_jumps_total"),
		QueueHighWater:     after["ascs_shard_queue_high_water"].Max,
		FastQueueHighWater: after["ascs_shard_fast_queue_high_water"].Max,
		WaveGroups:         d("ascs_wave_groups_total"),
		WaveFallbacks:      d("ascs_wave_fallback_total"),
		ShedRequests:       d("ascs_shed_requests_total"),
		HTTPShed:           d("ascs_http_shed_total"),
		DeadlineOps:        d("ascs_deadline_ops_total"),
		HTTPDeadline:       d("ascs_http_deadline_exceeded_total"),
	}
}

func (r RunResult) print() {
	lane := r.QueryConsistency
	if lane == "" {
		lane = "default"
	}
	log.Printf("shards=%d lane=%s: %.0f samples/s (%.2e offers/s) over %.2fs; ingest svc p50=%.2fms p99=%.2fms resp p99=%.2fms shed=%d retries=%d ddl=%d; %d queries (%d errs, %d warming) p50=%.2fms p99=%.2fms",
		r.Shards, lane, r.IngestSamplesPerSec, r.IngestOffersPerSec, r.ElapsedSec,
		r.IngestP50MS, r.IngestP99MS, r.IngestRespP99MS,
		r.IngestShed, r.IngestRetries, r.IngestDeadlineExceeded,
		r.QueryCount, r.QueryErrors, r.QueryWarming503, r.QueryP50MS, r.QueryP99MS)
}

// WorkloadInfo, EnvInfo, ScalingEntry, and Report form BENCH_server.json.
type WorkloadInfo struct {
	Dataset         string  `json:"dataset"`
	Dim             int     `json:"dim"`
	Samples         int     `json:"samples"`
	Batch           int     `json:"batch"`
	Conns           int     `json:"conns"`
	Queriers        int     `json:"queriers"`
	TopK            int     `json:"topk"`
	Engine          string  `json:"engine"`
	Tables          int     `json:"tables"`
	Range           int     `json:"range"`
	OffersPerSample float64 `json:"offers_per_sample"`
}

type EnvInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

type ScalingEntry struct {
	Shards        int     `json:"shards"`
	Baseline      int     `json:"baseline_shards"`
	IngestSpeedup float64 `json:"ingest_speedup"`
}

type Report struct {
	Workload WorkloadInfo `json:"workload"`
	Env      EnvInfo      `json:"env"`
	Runs     []RunResult  `json:"runs"`
	// Mixed is the mixed-workload arm: the same ingest-saturation
	// closed loop with concurrent queriers, once per query lane
	// (fresh, then fast), quantifying what the priority lane buys the
	// query tail under ingest pressure.
	Mixed   []RunResult    `json:"mixed_workload,omitempty"`
	Scaling []ScalingEntry `json:"scaling,omitempty"`
	Notes   string         `json:"notes,omitempty"`
}

func (r *Report) run(shards int) *RunResult {
	for i := range r.Runs {
		if r.Runs[i].Shards == shards {
			return &r.Runs[i]
		}
	}
	return nil
}

// runInProcess starts a fresh sharded server on a loopback listener and
// replays the workload through real HTTP.
func runInProcess(shards int, engine string, dim, tables, rng, window int, work workload, cfg loadConfig) RunResult {
	kind := shard.KindCS
	if engine == "ascs" {
		kind = shard.KindASCS
	}
	// Same derivation rules as ascs.NewSharded and the ascsd daemon
	// (mem→range, warm-up sizing, window→λ) via the one shared helper.
	mgr, err := shard.NewFromOptions(shard.ServeOptions{
		Dim:     dim,
		Samples: work.samples,
		Window:  window,
		Shards:  shards,
		Kind:    kind,
		Tables:  tables,
		Range:   rng,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(mgr, server.Options{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()
	res := runLoad(ts.URL, work, cfg)
	res.Shards = shards
	return res
}

// runLoad replays the workload closed-loop: every connection sends its
// next batch, waits for the response, repeats; query workers hammer
// /v1/topk concurrently until ingest completes.
func runLoad(base string, work workload, cfg loadConfig) RunResult {
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.conns + cfg.queriers}}
	var (
		next       atomic.Int64
		errCount   atomic.Int64
		shedCount  atomic.Int64
		retryCount atomic.Int64
		ddlCount   atomic.Int64
		okSamples  atomic.Int64
		okOffers   atomic.Uint64
		// Per-connection service-time and response-time samples. Service
		// time starts at the actual send; response time starts at the
		// -qps schedule slot, so a server that falls behind the schedule
		// is charged for the client-side backlog instead of hiding it
		// (the classic coordinated-omission mistake this replaces:
		// timing from after the pacing sleep).
		svcLats   = make([][]float64, cfg.conns)
		respLats  = make([][]float64, cfg.conns)
		queryLats = make([][]float64, cfg.queriers)
		qCount    atomic.Int64
		qErrs     atomic.Int64
		qWarming  atomic.Int64
		stop      = make(chan struct{})
		wg, qwg   sync.WaitGroup
	)
	// Scrape the server's own counters around the run so BENCH_server.json
	// records what the daemon saw, not just what the client measured.
	before := scrapeFamilies(client, base)
	start := time.Now()
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if int(i) >= len(work.bodies) {
					return
				}
				sent := time.Now()
				sched := sent
				if cfg.qps > 0 {
					// Open-loop pacing on top of the closed loop: request i
					// is released no earlier than its schedule slot, and
					// its response time is measured from that slot even
					// when the loop is already running late.
					sched = start.Add(time.Duration(float64(i) / cfg.qps * float64(time.Second)))
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
					}
				}
				var end time.Time
				ok := false
				for attempt := 0; ; attempt++ {
					sent = time.Now()
					resp, err := client.Post(base+"/v1/ingest", "application/json", bytes.NewReader(work.bodies[i]))
					end = time.Now()
					if err != nil {
						errCount.Add(1)
						break
					}
					retryAfter := resp.Header.Get("Retry-After")
					// Drain before Close so the keep-alive connection is
					// reusable; otherwise every request pays connection setup.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						ok = true
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						// Shed whole at admission: safe to replay verbatim.
						shedCount.Add(1)
						if attempt < cfg.retries {
							retryCount.Add(1)
							time.Sleep(retryDelay(attempt, retryAfter))
							continue
						}
						errCount.Add(1)
						break
					}
					if resp.StatusCode == http.StatusServiceUnavailable {
						// Deadline (or lifecycle) 503 on ingest: delivery may
						// have been partial, so a blind replay would
						// double-apply the shipped prefix — count, don't retry.
						ddlCount.Add(1)
						break
					}
					errCount.Add(1)
					break
				}
				if !ok {
					continue
				}
				okSamples.Add(int64(work.sampleCounts[i]))
				okOffers.Add(work.offerCounts[i])
				// Service time covers the successful attempt only; response
				// time runs from the schedule slot, so shed-and-retry waits
				// are charged to the tail like any other server-imposed delay.
				svcLats[c] = append(svcLats[c], float64(end.Sub(sent))/float64(time.Millisecond))
				respLats[c] = append(respLats[c], float64(end.Sub(sched))/float64(time.Millisecond))
			}
		}(c)
	}
	for q := 0; q < cfg.queriers; q++ {
		qwg.Add(1)
		go func(q int) {
			defer qwg.Done()
			url := fmt.Sprintf("%s/v1/topk?k=%d&magnitude=1", base, cfg.topk)
			if cfg.consistency != "" {
				url += "&consistency=" + cfg.consistency
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				resp, err := client.Get(url)
				lat := time.Since(t0)
				if err != nil {
					qErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// 503 while warming is expected but still counted — a run
				// that spent half its queries warming must say so; any
				// other non-200 is an error, not a silently dropped sample.
				switch resp.StatusCode {
				case http.StatusOK:
					queryLats[q] = append(queryLats[q], float64(lat)/float64(time.Millisecond))
					qCount.Add(1)
				case http.StatusServiceUnavailable:
					qWarming.Add(1)
				default:
					qErrs.Add(1)
				}
			}
		}(q)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	qwg.Wait()

	var svcAll, respAll, queryAll []float64
	for c := range svcLats {
		svcAll = append(svcAll, svcLats[c]...)
		respAll = append(respAll, respLats[c]...)
	}
	for _, l := range queryLats {
		queryAll = append(queryAll, l...)
	}
	sort.Float64s(svcAll)
	sort.Float64s(respAll)
	sort.Float64s(queryAll)
	res := RunResult{
		QueryConsistency:       cfg.consistency,
		Queriers:               cfg.queriers,
		Transport:              "http",
		ElapsedSec:             elapsed.Seconds(),
		IngestRequests:         len(work.bodies),
		IngestErrors:           int(errCount.Load()),
		IngestShed:             int(shedCount.Load()),
		IngestRetries:          int(retryCount.Load()),
		IngestDeadlineExceeded: int(ddlCount.Load()),
		QueryCount:             int(qCount.Load()),
		QueryErrors:            int(qErrs.Load()),
		QueryWarming503:        int(qWarming.Load()),
	}
	if elapsed > 0 {
		// Throughput counts only samples the server accepted (200s);
		// errored requests must not inflate the recorded baseline.
		res.IngestSamplesPerSec = float64(okSamples.Load()) / elapsed.Seconds()
		res.IngestOffersPerSec = float64(okOffers.Load()) / elapsed.Seconds()
	}
	if len(svcAll) > 0 {
		res.IngestP50MS = stats.QuantileSorted(svcAll, 0.5)
		res.IngestP99MS = stats.QuantileSorted(svcAll, 0.99)
		res.IngestRespP50MS = stats.QuantileSorted(respAll, 0.5)
		res.IngestRespP99MS = stats.QuantileSorted(respAll, 0.99)
	}
	if len(queryAll) > 0 {
		res.QueryP50MS = stats.QuantileSorted(queryAll, 0.5)
		res.QueryP99MS = stats.QuantileSorted(queryAll, 0.99)
	}
	res.Server = counterDelta(before, scrapeFamilies(client, base))
	return res
}
