// Command ascsbench benchmarks the single-thread ingest hot path — the
// per-pair cost that bounds how fast the O(d²) pair stream of §5 can be
// absorbed — and emits a machine-readable BENCH_ingest.json so future
// changes have a recorded number to beat.
//
//	ascsbench -out BENCH_ingest.json
//	ascsbench -engines ascs -benchtime 2s
//
// The workload is the paper's throughput regime: the sampling phase with
// a primed working set whose every offer passes the τ gate (tracked,
// admitted-pair case — the most hash-intensive path). Four modes are
// measured per engine:
//
//   - legacy: the pre-fusion per-offer sequence replayed on the raw
//     count sketch — gate Estimate, Add, tracker Estimate (three hash
//     phases for ASCS, two for CS). This is the "before" number and
//     stays reproducible after the fused paths land.
//   - percall: engine Offer through the Ingestor interface plus the
//     separate tracker Estimate (Offer is internally fused, so this
//     costs two hash phases).
//   - fused: OfferEstimate — one hash phase serves gate, insert, and
//     tracker estimate.
//   - batch: OfferPairs with the wave group pinned to 1 — fused plus
//     batched interface dispatch, the scalar batch loop (the pre-wave
//     number, kept measurable as the wave baseline).
//   - batch-decay: the batch arm on an engine in exponential-decay
//     (unbounded-stream) mode, with one step advance per chunk so every
//     lazy decay tick is paid — the steady-state cost of sliding-window
//     serving, which must match batch within noise and stay 0
//     allocs/pair.
//   - wave: OfferPairs at the default wave group — staged group ingest
//     (group hashing → touch/prefetch of the K·G cells → gather →
//     gate/scatter) that overlaps the per-pair table-cell misses.
//   - wave-decay: the wave arm on a decayed engine (same contract as
//     batch-decay: within noise of wave, 0 allocs/pair).
//   - row: OfferRows over an upper triangle covering the same primed
//     working set, wave group pinned to 1 — the row API with the scalar
//     loop, isolating the per-pair win of shipping one base per row
//     instead of one key per pair.
//   - row-wave: OfferRows at the default wave group — rows expand into
//     wave groups packed across row boundaries, and group hashing runs
//     through the AVX2 slot-fill kernel where the host supports it.
//   - row-wave-decay: the row-wave arm on a decayed engine (same
//     contract as the other *-decay arms).
//
// The -sweepranges flag additionally runs a batch-vs-wave sweep across
// table ranges from cache-resident to DRAM-resident (working set
// scaled with the range), because the wave win lives where the tables
// miss: at the cache-resident record config the touch pass mostly
// re-reads L2-resident lines, while at production ranges the K
// dependent misses dominate the per-pair cost and overlapping them is
// the remaining constant factor. The env block records the CPU model
// and cache sizes so sweep files from different hosts are comparable.
//
// The -foldsweep flag runs the elastic-memory sweep: each engine is fed
// a varied stream, then folded level by level, recording the serialized
// snapshot bytes (the 2^L shrink that folded snapshots buy) and the RMS
// estimate deviation each level introduces against the engine's own
// unfolded estimates (the collision noise the fold trades for memory,
// expected to grow ~2^(L/2)).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/hashing"
	"repro/internal/pairs"
	"repro/internal/shard"
	"repro/internal/sketchapi"
	"repro/internal/stream"
)

type Result struct {
	Engine        string  `json:"engine"`
	Mode          string  `json:"mode"`
	HashPhases    int     `json:"hash_phases_per_pair"`
	NsPerPair     float64 `json:"ns_per_pair"`
	PairsPerSec   float64 `json:"pairs_per_sec"`
	AllocsPerPair float64 `json:"allocs_per_pair"`
	BytesPerPair  float64 `json:"bytes_per_pair"`
}

type EnvInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// CPUModel and CPUCache come from /proc/cpuinfo ("model name" and
	// "cache size"); Caches lists the per-level cache sizes from sysfs
	// when readable. Sweep numbers are only comparable between hosts
	// with comparable cache hierarchies, so the file records them.
	CPUModel string   `json:"cpu_model,omitempty"`
	CPUCache string   `json:"cpu_cache,omitempty"`
	Caches   []string `json:"caches,omitempty"`
	// CPUFeatures lists the ISA extensions the hashing kernels detected
	// and will actually use (e.g. avx2, bmi2). Empty means the pure-Go
	// fallbacks ran, so kernel-sensitive numbers (row-wave, wave) are
	// not comparable with files from vectorized hosts.
	CPUFeatures []string `json:"cpu_features,omitempty"`
}

// readCPUInfo extracts the first "model name" and "cache size" entries
// of /proc/cpuinfo (best effort; absent on non-Linux hosts).
func readCPUInfo() (model, cache string) {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "", ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch {
		case model == "" && k == "model name":
			model = v
		case cache == "" && k == "cache size":
			cache = v
		}
		if model != "" && cache != "" {
			break
		}
	}
	return model, cache
}

// readSysCaches lists cpu0's cache levels from sysfs, e.g.
// ["L1d 32K", "L2 1024K", "L3 36864K"] (best effort).
func readSysCaches() []string {
	var out []string
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/sys/devices/system/cpu/cpu0/cache/index%d", i)
		read := func(name string) string {
			b, err := os.ReadFile(dir + "/" + name)
			if err != nil {
				return ""
			}
			return strings.TrimSpace(string(b))
		}
		level, size, typ := read("level"), read("size"), read("type")
		if level == "" || size == "" {
			break
		}
		suffix := ""
		switch typ {
		case "Data":
			suffix = "d"
		case "Instruction":
			suffix = "i"
		}
		out = append(out, fmt.Sprintf("L%s%s %s", level, suffix, size))
	}
	return out
}

type SpeedupEntry struct {
	Engine   string  `json:"engine"`
	Mode     string  `json:"mode"`
	Baseline string  `json:"baseline_mode"`
	Speedup  float64 `json:"speedup"`
}

// SweepPoint is one table range of the batch-vs-wave sweep: the scalar
// batch loop against the wave pipeline at identical working sets, with
// the footprints recorded so the cache-vs-DRAM regime is legible.
type SweepPoint struct {
	RangeLog2  int `json:"range_log2"`
	Range      int `json:"range"`
	WorkingSet int `json:"working_set_keys"`
	// TableBytes is the sketch's table footprint K·R·8; TouchedBytes
	// approximates the bytes the working set actually addresses
	// (K·keys·8, ignoring line rounding) — the number to compare
	// against the cache sizes in env.
	TableBytes   int64    `json:"table_bytes"`
	TouchedBytes int64    `json:"touched_bytes_approx"`
	Results      []Result `json:"results"`
	// WaveSpeedup is batch ns/pair ÷ wave ns/pair at this range;
	// RowWaveSpeedup is batch ns/pair ÷ row-wave ns/pair.
	WaveSpeedup    float64 `json:"wave_speedup"`
	RowWaveSpeedup float64 `json:"row_wave_speedup"`
}

// FoldPoint is one level of the -foldsweep arm: the serialized size of
// the engine folded to that level and the RMS estimate deviation the
// fold introduces over the primed working set, measured against the
// engine's own unfolded estimates. Level 0 is the uncompressed
// reference (shrink 1, deviation 0); SignalRMS is the reference
// estimates' own RMS magnitude, the scale the deviation is read against.
type FoldPoint struct {
	Engine       string  `json:"engine"`
	Level        int     `json:"level"`
	Bytes        int     `json:"serialized_bytes"`
	Shrink       float64 `json:"shrink_vs_full"`
	RMSDeviation float64 `json:"rms_deviation"`
	SignalRMS    float64 `json:"signal_rms"`
}

// WALPoint is one sync policy of the -walsweep arm: the shard-manager
// ingest cost per pair with the write-ahead log off ("none"), armed
// without fsync ("off"), fsynced on a timer ("interval"), or fsynced
// per commit group ("batch") — the ns/pair premium each durability
// level charges the hot path, plus the log traffic it generated.
type WALPoint struct {
	Sync          string  `json:"sync"`
	NsPerPair     float64 `json:"ns_per_pair"`
	PairsPerSec   float64 `json:"pairs_per_sec"`
	AllocsPerPair float64 `json:"allocs_per_pair"`
	// OverheadNs is this policy's ns/pair minus the "none" baseline's.
	OverheadNs float64 `json:"overhead_ns_vs_none"`
	WALBytes   uint64  `json:"wal_appended_bytes"`
	WALFsyncs  uint64  `json:"wal_fsyncs"`
}

type Report struct {
	Config struct {
		Tables     int    `json:"tables"`
		Range      int    `json:"range"`
		WorkingSet int    `json:"working_set_keys"`
		BatchChunk int    `json:"batch_chunk"`
		WaveGroup  int    `json:"wave_group"`
		BenchTime  string `json:"benchtime"`
	} `json:"config"`
	Env        EnvInfo        `json:"env"`
	Results    []Result       `json:"results"`
	Speedups   []SpeedupEntry `json:"speedups,omitempty"`
	RangeSweep []SweepPoint   `json:"range_sweep,omitempty"`
	FoldSweep  []FoldPoint    `json:"fold_sweep,omitempty"`
	WALSweep   []WALPoint     `json:"wal_sweep,omitempty"`
	Notes      string         `json:"notes"`
}

func main() {
	var (
		tables      = flag.Int("tables", 5, "hash tables K")
		rng         = flag.Int("range", 1<<14, "buckets per table R")
		nkeys       = flag.Int("keys", 1024, "working-set size (primed, admitted keys)")
		chunk       = flag.Int("chunk", 512, "pairs per OfferPairs call in batch mode")
		benchtime   = flag.Duration("benchtime", time.Second, "target run time per mode")
		engines     = flag.String("engines", "ascs,cs", "comma-separated engines: ascs, cs")
		out         = flag.String("out", "BENCH_ingest.json", "output report path")
		sweepRanges = flag.String("sweepranges", "14,16,18,20,22",
			"comma-separated log2 table ranges for the batch-vs-wave sweep (cache-resident → DRAM-resident; empty disables)")
		sweepEngine = flag.String("sweepengine", "ascs", "engine measured by the range sweep")
		foldSweep   = flag.Int("foldsweep", 3,
			"deepest fold level for the accuracy/bytes-vs-level fold sweep over -engines (0 disables)")
		walSweep = flag.Bool("walsweep", true,
			"measure shard-manager ingest under -wal-sync off/interval/batch vs no WAL (false disables)")
	)
	testing.Init() // registers test.benchtime, set per run in runMode
	flag.Parse()
	log.SetPrefix("ascsbench: ")
	log.SetFlags(0)

	report := Report{
		Env: EnvInfo{
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		},
		Notes: "single-thread sampling-phase hot path, tracked admitted-pair case; " +
			"legacy replays the pre-fusion per-offer hash sequence and is the before number, " +
			"fused/batch are the after numbers (batch pins the wave group to 1 — the scalar " +
			"batch loop); wave is the wave-pipelined group path (hash → touch/prefetch → " +
			"gather → gate/scatter); the *-decay arms run the same loop on an exponential-decay " +
			"(unbounded window) engine with one step advance per chunk so the lazy aging tick " +
			"is included — they must track their fixed arms within noise at 0 allocs/pair; " +
			"range_sweep compares batch vs wave vs row-wave from cache-resident to DRAM-resident " +
			"tables (working set scaled with the range) — the miss-bound regime is where the wave " +
			"pipeline's overlapped loads pay; the row arms drive OfferRows over an upper triangle " +
			"covering the same primed key range (x = left·right = 1e6, matching the pair arms), " +
			"with row-wave additionally exercising the vectorized slot-fill kernel when " +
			"env.cpu_features lists avx2",
	}
	report.Env.CPUModel, report.Env.CPUCache = readCPUInfo()
	report.Env.Caches = readSysCaches()
	report.Env.CPUFeatures = hashing.CPUFeatures()
	report.Config.Tables = *tables
	report.Config.Range = *rng
	report.Config.WorkingSet = *nkeys
	report.Config.BatchChunk = *chunk
	report.Config.WaveGroup = countsketch.WaveGroup
	report.Config.BenchTime = benchtime.String()

	for _, engine := range strings.Split(*engines, ",") {
		engine = strings.TrimSpace(engine)
		for _, mode := range []string{"legacy", "percall", "fused", "batch", "batch-decay", "wave", "wave-decay", "row", "row-wave", "row-wave-decay"} {
			res := runMode(engine, mode, *tables, *rng, *nkeys, *chunk, *benchtime)
			log.Printf("%-4s %-10s %2d hash phase(s): %7.1f ns/pair (%.3e pairs/s, %.2f allocs/pair)",
				res.Engine, res.Mode, res.HashPhases, res.NsPerPair, res.PairsPerSec, res.AllocsPerPair)
			report.Results = append(report.Results, res)
		}
		base := findResult(report.Results, engine, "legacy")
		for _, mode := range []string{"fused", "batch", "batch-decay", "wave", "wave-decay", "row", "row-wave", "row-wave-decay"} {
			if r := findResult(report.Results, engine, mode); r != nil && base != nil && base.NsPerPair > 0 {
				report.Speedups = append(report.Speedups, SpeedupEntry{
					Engine: engine, Mode: mode, Baseline: "legacy",
					Speedup: base.NsPerPair / r.NsPerPair,
				})
			}
		}
	}
	for _, sp := range report.Speedups {
		log.Printf("%s %s vs %s: %.2fx", sp.Engine, sp.Mode, sp.Baseline, sp.Speedup)
	}

	if *sweepRanges != "" {
		for _, tok := range strings.Split(*sweepRanges, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			pow, err := strconv.Atoi(tok)
			if err != nil || pow < 8 || pow > 28 {
				log.Fatalf("bad -sweepranges entry %q (want log2 range in [8,28])", tok)
			}
			r := 1 << pow
			// Scale the working set with the table so large ranges are
			// genuinely miss-bound: a fixed 1024-key set would touch a
			// few hundred KB of a 160 MB table and measure the cache,
			// not DRAM.
			wkeys := r / 4
			if wkeys < 1024 {
				wkeys = 1024
			}
			if wkeys > 1<<20 {
				wkeys = 1 << 20
			}
			pt := SweepPoint{
				RangeLog2:    pow,
				Range:        r,
				WorkingSet:   wkeys,
				TableBytes:   int64(*tables) * int64(r) * 8,
				TouchedBytes: int64(*tables) * int64(wkeys) * 8,
			}
			for _, mode := range []string{"batch", "wave", "row-wave"} {
				res := runMode(*sweepEngine, mode, *tables, r, wkeys, *chunk, *benchtime)
				log.Printf("sweep R=2^%-2d keys=%-8d %-8s: %7.1f ns/pair (%.3e pairs/s, %.2f allocs/pair)",
					pow, wkeys, res.Mode, res.NsPerPair, res.PairsPerSec, res.AllocsPerPair)
				pt.Results = append(pt.Results, res)
			}
			b := findResult(pt.Results, *sweepEngine, "batch")
			if w := findResult(pt.Results, *sweepEngine, "wave"); b != nil && w != nil && w.NsPerPair > 0 {
				pt.WaveSpeedup = b.NsPerPair / w.NsPerPair
				log.Printf("sweep R=2^%-2d wave vs batch: %.2fx", pow, pt.WaveSpeedup)
			}
			if rw := findResult(pt.Results, *sweepEngine, "row-wave"); b != nil && rw != nil && rw.NsPerPair > 0 {
				pt.RowWaveSpeedup = b.NsPerPair / rw.NsPerPair
				log.Printf("sweep R=2^%-2d row-wave vs batch: %.2fx", pow, pt.RowWaveSpeedup)
			}
			report.RangeSweep = append(report.RangeSweep, pt)
		}
	}

	if *foldSweep > 0 {
		for _, engine := range strings.Split(*engines, ",") {
			engine = strings.TrimSpace(engine)
			report.FoldSweep = append(report.FoldSweep,
				runFoldSweep(engine, *tables, *rng, *nkeys, *foldSweep)...)
		}
	}

	if *walSweep {
		report.WALSweep = runWALSweep(*tables, *rng, *benchtime)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", *out)
}

func findResult(rs []Result, engine, mode string) *Result {
	for i := range rs {
		if rs[i].Engine == engine && rs[i].Mode == mode {
			return &rs[i]
		}
	}
	return nil
}

// benchT is the synthetic stream horizon: long enough that the primed
// working set never exhausts it. In the decayed arms it doubles as the
// effective window (λ = 1 − 1/benchT), so the per-step aging is that of
// a realistic long-window deployment.
const benchT = 1 << 30

// newEngine builds the measured engine in its sampling phase with nkeys
// primed, admitted keys. decayed selects the unbounded (λ-weighted)
// construction.
func newEngine(engine string, tables, rng, nkeys int, decayed bool) sketchapi.OfferEstimator {
	cfg := countsketch.Config{Tables: tables, Range: rng, Seed: 1}
	lambda := 1 - 1.0/benchT
	var eng sketchapi.OfferEstimator
	switch engine {
	case "ascs":
		hp := core.Hyperparams{T0: 1, Theta: 0, Tau0: 1e-12, T: benchT}
		var (
			e   *core.Engine
			err error
		)
		if decayed {
			e, err = core.NewEngineDecayed(cfg, hp, true, lambda)
		} else {
			e, err = core.NewEngine(cfg, hp, true)
		}
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	case "cs":
		var (
			ms  *countsketch.MeanSketch
			err error
		)
		if decayed {
			ms, err = countsketch.NewMeanSketchDecayed(cfg, benchT, lambda)
		} else {
			ms, err = countsketch.NewMeanSketch(cfg, benchT)
		}
		if err != nil {
			log.Fatal(err)
		}
		eng = ms
	default:
		log.Fatalf("unknown engine %q (want ascs or cs)", engine)
	}
	eng.BeginStep(1)
	for k := 0; k < nkeys; k++ {
		eng.Offer(uint64(k), 1e6)
	}
	eng.BeginStep(2) // past T0: ASCS samples; primed keys clear τ
	return eng
}

func runMode(engine, mode string, tables, rng, nkeys, chunk int, benchtime time.Duration) Result {
	hashPhases := map[string]int{
		"legacy": 3, "percall": 2, "fused": 1,
		"batch": 1, "batch-decay": 1, "wave": 1, "wave-decay": 1,
		"row": 1, "row-wave": 1, "row-wave-decay": 1,
	}[mode]
	if engine == "cs" && mode == "legacy" {
		hashPhases = 2 // CS had no gate estimate: Add + tracker Estimate
	}
	var fn func(b *testing.B)
	switch mode {
	case "legacy":
		fn = func(b *testing.B) { benchLegacy(b, engine, tables, rng, nkeys) }
	case "percall":
		fn = func(b *testing.B) { benchPerCall(b, engine, tables, rng, nkeys) }
	case "fused":
		fn = func(b *testing.B) { benchFused(b, engine, tables, rng, nkeys) }
	case "batch":
		fn = func(b *testing.B) { benchBatch(b, engine, tables, rng, nkeys, chunk, false, 1) }
	case "batch-decay":
		fn = func(b *testing.B) { benchBatch(b, engine, tables, rng, nkeys, chunk, true, 1) }
	case "wave":
		fn = func(b *testing.B) { benchBatch(b, engine, tables, rng, nkeys, chunk, false, 0) }
	case "wave-decay":
		fn = func(b *testing.B) { benchBatch(b, engine, tables, rng, nkeys, chunk, true, 0) }
	case "row":
		fn = func(b *testing.B) { benchRows(b, engine, tables, rng, nkeys, false, 1) }
	case "row-wave":
		fn = func(b *testing.B) { benchRows(b, engine, tables, rng, nkeys, false, 0) }
	case "row-wave-decay":
		fn = func(b *testing.B) { benchRows(b, engine, tables, rng, nkeys, true, 0) }
	}
	prev := flag.Lookup("test.benchtime")
	if prev != nil {
		_ = prev.Value.Set(benchtime.String())
	}
	r := testing.Benchmark(fn)
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	res := Result{
		Engine: engine, Mode: mode, HashPhases: hashPhases,
		NsPerPair:     ns,
		AllocsPerPair: float64(r.AllocsPerOp()),
		BytesPerPair:  float64(r.AllocedBytesPerOp()),
	}
	if ns > 0 {
		res.PairsPerSec = 1e9 / ns
	}
	return res
}

// benchLegacy replays the exact pre-fusion per-offer hash sequence on
// the raw count sketch: gate Estimate (ASCS only), Add, and the tracker
// Estimate that covstream used to issue separately.
func benchLegacy(b *testing.B, engine string, tables, rng, nkeys int) {
	sk := countsketch.MustNew(countsketch.Config{Tables: tables, Range: rng, Seed: 1})
	const invT, tau = 1.0 / benchT, 1e-12
	for k := 0; k < nkeys; k++ {
		sk.Add(uint64(k), 1e6*invT)
	}
	gated := engine == "ascs"
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		key := uint64(i % nkeys)
		if gated {
			if est := sk.Estimate(key); math.Abs(est) >= tau {
				sk.Add(key, 1e6*invT)
			}
		} else {
			sk.Add(key, 1e6*invT)
		}
		sink += sk.Estimate(key) // the tracker's separate estimate
	}
	_ = sink
}

func benchPerCall(b *testing.B, engine string, tables, rng, nkeys int) {
	var eng sketchapi.Ingestor = newEngine(engine, tables, rng, nkeys, false)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		key := uint64(i % nkeys)
		eng.Offer(key, 1e6)
		sink += eng.Estimate(key)
	}
	_ = sink
}

func benchFused(b *testing.B, engine string, tables, rng, nkeys int) {
	eng := newEngine(engine, tables, rng, nkeys, false)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		est, _ := eng.OfferEstimate(uint64(i%nkeys), 1e6)
		sink += est
	}
	_ = sink
}

// benchBatch measures OfferPairs with the given wave group: 1 pins the
// scalar batch loop ("batch"), 0 keeps the engine's default wave group
// ("wave").
func benchBatch(b *testing.B, engine string, tables, rng, nkeys, chunk int, decayed bool, group int) {
	eng := newEngine(engine, tables, rng, nkeys, decayed)
	if group > 0 {
		eng.(sketchapi.WaveTuner).SetWaveGroup(group)
	}
	if chunk > nkeys {
		chunk = nkeys
	}
	// The chunks walk the full primed working set so the cache footprint
	// matches the legacy/percall/fused arms exactly.
	keys := make([]uint64, nkeys)
	xs := make([]float64, nkeys)
	ests := make([]float64, nkeys)
	for i := range keys {
		keys[i] = uint64(i)
		xs[i] = 1e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	pos, step := 0, 2
	for lo := 0; lo < b.N; lo += chunk {
		n := chunk
		if lo+n > b.N {
			n = b.N - lo
		}
		if pos+n > nkeys {
			pos = 0
		}
		if decayed {
			// One chunk stands for one sample's pair run: advancing the
			// step charges the lazy decay tick (sketch scale bump,
			// N_eff update) to the measured loop.
			step++
			eng.BeginStep(step)
		}
		eng.OfferPairs(keys[pos:pos+n], xs[pos:pos+n], ests[pos:pos+n])
		pos += n
	}
}

// triangleDim returns the smallest m whose upper triangle has at least
// nkeys pairs, so a single OfferRows triangle covers (essentially) the
// same primed key range as the pair arms.
func triangleDim(nkeys int) int {
	m := int(math.Ceil((1 + math.Sqrt(1+8*float64(nkeys))) / 2))
	if m < 2 {
		m = 2
	}
	for m > 2 && (m-1)*(m-2)/2 >= nkeys {
		m--
	}
	for m*(m-1)/2 < nkeys {
		m++
	}
	return m
}

// benchRows measures OfferRows over the upper triangle of an m-feature
// sample with m(m−1)/2 ≈ nkeys: bases[i] = pairs.RowBase(i, m) and
// ids[j] = j, so the offered keys enumerate exactly [0, m(m−1)/2) — the
// primed working set — and left·right = 1e6 matches the pair arms'
// update magnitude. group 1 pins the scalar loop ("row"), 0 keeps the
// default wave group ("row-wave").
func benchRows(b *testing.B, engine string, tables, rng, nkeys int, decayed bool, group int) {
	m := triangleDim(nkeys)
	p := m * (m - 1) / 2
	eng := newEngine(engine, tables, rng, p, decayed)
	if group > 0 {
		eng.(sketchapi.WaveTuner).SetWaveGroup(group)
	}
	row, ok := eng.(sketchapi.RowOfferer)
	if !ok {
		b.Fatalf("engine %q does not implement RowOfferer", engine)
	}
	bases := make([]uint64, m-1)
	left := make([]float64, m-1)
	ids := make([]uint64, m)
	right := make([]float64, m)
	ests := make([]float64, p)
	for i := range bases {
		bases[i] = uint64(pairs.RowBase(i, m))
		left[i] = 1000
	}
	for j := range ids {
		ids[j] = uint64(j)
		right[j] = 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	step := 2
	// One iteration is one whole triangle; the final one may overshoot
	// b.N by at most p-1 pairs, negligible at benchtime-scale N.
	for done := 0; done < b.N; done += p {
		if decayed {
			// One triangle stands for one sample, charging the lazy decay
			// tick to the measured loop as in the other *-decay arms.
			step++
			eng.BeginStep(step)
		}
		row.OfferRows(bases, ids, left, right, ests)
	}
}

// runFoldSweep folds one engine level by level, recording the
// serialized snapshot size and the RMS estimate deviation versus the
// engine's own unfolded estimates. The stream carries varied magnitudes
// (not the uniform priming constant) so fold collisions have real
// signal to perturb; the reference estimates are taken from the very
// engine being folded, so the deviation isolates the fold's collision
// noise from the sketch's level-0 error.
func runFoldSweep(engine string, tables, rng, nkeys, maxLevel int) []FoldPoint {
	eng := newEngine(engine, tables, rng, nkeys, false)
	sm := hashing.NewSplitMix64(9)
	const chunk = 1 << 10
	keys := make([]uint64, chunk)
	xs := make([]float64, chunk)
	for off := 0; off < 8*nkeys; off += chunk {
		for i := range keys {
			r := sm.Next()
			keys[i] = r % uint64(nkeys)
			xs[i] = float64(int64((r>>32)%2001) - 1000)
		}
		eng.OfferPairs(keys, xs, nil)
	}

	ref := make([]float64, nkeys)
	var energy float64
	for k := range ref {
		ref[k] = eng.Estimate(uint64(k))
		energy += ref[k] * ref[k]
	}
	signal := math.Sqrt(energy / float64(nkeys))

	folder, ok := eng.(sketchapi.Folder)
	if !ok {
		log.Fatalf("engine %q does not implement sketchapi.Folder", engine)
	}
	snap, ok := eng.(sketchapi.Snapshotter)
	if !ok {
		log.Fatalf("engine %q does not implement sketchapi.Snapshotter", engine)
	}
	size := func() int {
		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			log.Fatal(err)
		}
		return buf.Len()
	}
	if max := folder.MaxFoldLevels(); maxLevel > max {
		maxLevel = max
	}
	full := size()
	pts := []FoldPoint{{Engine: engine, Level: 0, Bytes: full, Shrink: 1, SignalRMS: signal}}
	for level := 1; level <= maxLevel; level++ {
		if err := folder.Fold(1); err != nil {
			log.Fatal(err)
		}
		var sum float64
		for k, want := range ref {
			d := eng.Estimate(uint64(k)) - want
			sum += d * d
		}
		b := size()
		pt := FoldPoint{
			Engine: engine, Level: level, Bytes: b,
			Shrink:       float64(full) / float64(b),
			RMSDeviation: math.Sqrt(sum / float64(nkeys)),
			SignalRMS:    signal,
		}
		log.Printf("foldsweep %-4s L%d: %8d B (%5.2fx smaller), rms fold deviation %.4g (signal rms %.4g)",
			engine, level, pt.Bytes, pt.Shrink, pt.RMSDeviation, pt.SignalRMS)
		pts = append(pts, pt)
	}
	return pts
}

// runWALSweep measures the manager-level ingest path — routing, worker
// apply, and the WAL tee — under each durability policy, against the
// same manager with no WAL at all. The tee itself is a value send off
// the hot path, so "off" prices the encode+append work of the log
// goroutine stealing cycles, "interval" adds a timer fsync, and "batch"
// charges an fsync per commit group: the full RPO-vs-throughput menu.
func runWALSweep(tables, rng int, benchtime time.Duration) []WALPoint {
	const (
		feat  = 16 // features per sample: feat·(feat−1)/2 pairs each
		batch = 64 // samples per Ingest call
	)
	pairsPerCall := batch * feat * (feat - 1) / 2
	samples := make([]stream.Sample, batch)
	for i := range samples {
		row := make([]float64, feat)
		for j := range row {
			row[j] = float64((i*feat+j)%13) - 6
		}
		samples[i] = stream.FromDense(row)
	}

	var pts []WALPoint
	for _, sync := range []string{"none", "off", "interval", "batch"} {
		cfg := shard.Config{
			Dim: feat, Shards: 2,
			Engine: shard.EngineSpec{
				Kind:   shard.KindCS,
				Sketch: countsketch.Config{Tables: tables, Range: rng, Seed: 1},
				T:      1 << 30,
			},
		}
		dir := ""
		if sync != "none" {
			d, err := os.MkdirTemp("", "ascsbench-wal-*")
			if err != nil {
				log.Fatal(err)
			}
			dir = d
			cfg.WALDir, cfg.WALSync = dir, sync
		}
		mgr, err := shard.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if prev := flag.Lookup("test.benchtime"); prev != nil {
			_ = prev.Value.Set(benchtime.String())
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := mgr.Ingest(samples); err != nil {
					b.Fatal(err)
				}
			}
			// The flush barrier keeps queued batches from leaking out of
			// the timed window — the number is applied pairs, not enqueues.
			if err := mgr.Flush(); err != nil {
				b.Fatal(err)
			}
		})
		pt := WALPoint{
			Sync:          sync,
			NsPerPair:     float64(r.T.Nanoseconds()) / float64(r.N*pairsPerCall),
			AllocsPerPair: float64(r.AllocsPerOp()) / float64(pairsPerCall),
		}
		if pt.NsPerPair > 0 {
			pt.PairsPerSec = 1e9 / pt.NsPerPair
		}
		if ws := mgr.WALStats(); ws != nil {
			pt.WALBytes = ws.AppendedBytes
			pt.WALFsyncs = ws.Fsyncs
		}
		if err := mgr.Close(); err != nil {
			log.Fatal(err)
		}
		if dir != "" {
			os.RemoveAll(dir)
		}
		if len(pts) > 0 {
			pt.OverheadNs = pt.NsPerPair - pts[0].NsPerPair
		}
		log.Printf("walsweep sync=%-8s: %7.1f ns/pair (%.3e pairs/s, %+.1f ns vs none, %d fsyncs)",
			pt.Sync, pt.NsPerPair, pt.PairsPerSec, pt.OverheadNs, pt.WALFsyncs)
		pts = append(pts, pt)
	}
	return pts
}
