// Command ascs sketches a data stream and reports the top correlated
// feature pairs.
//
// Input is either a LIBSVM-format file or a named synthetic workload:
//
//	ascs -input data.libsvm -dim 5000 -top 50 -mem 100000
//	ascs -synthetic url -dim 3000 -samples 5000 -top 100
//	ascs -synthetic dna -kmer 8 -samples 5000 -top 100
//
// The engine defaults to ASCS; -engine cs|asketch selects a baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/stream"

	ascs "repro"
)

func main() {
	var (
		input     = flag.String("input", "", "LIBSVM input file ('-' for stdin)")
		dim       = flag.Int("dim", 0, "feature dimensionality (required for -input)")
		synthetic = flag.String("synthetic", "", "synthetic workload: url, dna, simulation, gisette, epsilon, cifar10, rcv1, sector")
		kmer      = flag.Int("kmer", 8, "k-mer length for -synthetic dna")
		samples   = flag.Int("samples", 5000, "stream length T")
		mem       = flag.Int("mem", 100_000, "sketch memory budget in float64 cells")
		tables    = flag.Int("tables", 5, "hash tables K")
		top       = flag.Int("top", 25, "number of top pairs to report")
		alpha     = flag.Float64("alpha", 0.005, "assumed signal-pair sparsity")
		engine    = flag.String("engine", "ascs", "engine: ascs, cs, asketch")
		seed      = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	src, d, err := openSource(*input, *synthetic, *dim, *kmer, *samples, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var kind ascs.EngineKind
	switch *engine {
	case "ascs":
		kind = ascs.EngineASCS
	case "cs":
		kind = ascs.EngineCS
	case "asketch":
		kind = ascs.EngineASketch
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}

	est, err := ascs.NewEstimator(ascs.Config{
		Dim: d, Samples: *samples, Tables: *tables, MemoryFloats: *mem,
		Alpha: *alpha, Engine: kind, Seed: uint64(*seed),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	n := 0
	for n < *samples {
		s, ok := src.Next()
		if !ok {
			break
		}
		if err := est.Observe(s.Idx, s.Val); err != nil {
			fmt.Fprintf(os.Stderr, "sample %d: %v\n", n+1, err)
			os.Exit(1)
		}
		n++
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "no samples read")
		os.Exit(1)
	}
	elapsed := time.Since(start)

	pairsOut, err := est.Top(*top)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("engine=%s dim=%d samples=%d sketch=%dB time=%s\n",
		kind, d, n, est.MemoryBytes(), elapsed.Round(time.Millisecond))
	if s := est.Schedule(); s.T > 0 {
		fmt.Printf("schedule: %s\n", s)
	}
	fmt.Printf("%-6s %-8s %-8s %s\n", "rank", "featA", "featB", "estimate")
	for i, p := range pairsOut {
		fmt.Printf("%-6d %-8d %-8d %+.4f\n", i+1, p.A, p.B, p.Estimate)
	}
}

// openSource builds the sample source from flags.
func openSource(input, synthetic string, dim, kmer, samples int, seed int64) (stream.Source, int, error) {
	switch {
	case input != "" && synthetic != "":
		return nil, 0, fmt.Errorf("choose one of -input or -synthetic")
	case input != "":
		if dim <= 0 {
			return nil, 0, fmt.Errorf("-dim is required with -input")
		}
		f := os.Stdin
		if input != "-" {
			var err error
			f, err = os.Open(input)
			if err != nil {
				return nil, 0, err
			}
		}
		return stream.NewLIBSVMReader(f, dim), dim, nil
	case synthetic == "url":
		if dim <= 0 {
			dim = 3000
		}
		cfg := dataset.DefaultURLConfig(dim, seed)
		src, err := cfg.NewSource(samples)
		return src, dim, err
	case synthetic == "dna":
		cfg := dataset.DefaultDNAConfig(kmer, seed)
		src, err := cfg.NewSource(samples)
		return src, cfg.Dim(), err
	case synthetic != "":
		if dim <= 0 {
			dim = 500
		}
		ds, err := dataset.ByName(synthetic, dataset.Scale{Dim: dim, Samples: samples}, seed)
		if err != nil {
			return nil, 0, err
		}
		return ds.Source(), dim, nil
	default:
		return nil, 0, fmt.Errorf("provide -input FILE or -synthetic NAME")
	}
}
