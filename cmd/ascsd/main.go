// Command ascsd is the ASCS serving daemon: a long-running, sharded
// covariance sketching service that ingests sample streams over HTTP
// and answers live top-k correlation queries while the stream is still
// flowing.
//
//	ascsd -dim 5000 -samples 200000 -shards 8 -mem 4000000
//	ascsd -dim 5000 -samples 200000 -engine cs -standardize=false
//	ascsd -dim 5000 -window 500000 -shards 8           # unbounded stream, sliding window
//	ascsd -dim 5000 -samples 200000 -decay 0.999995    # unbounded, explicit λ
//	ascsd -dim 5000 -samples 200000 -snapshot-dir /var/lib/ascsd -snapshot-every 30s
//	ascsd -snapshot-dir /var/lib/ascsd -restore        # resume after a crash
//	ascsd -dim 5000 -samples 200000 -fold-idle 30s -snapshot-fold 2
//
// With -window (or -decay) the daemon serves an unbounded stream:
// there is no horizon to exhaust (no 409s past T), estimates track the
// λ-weighted sliding window, and /v1/stats reports window, lambda and
// n_eff instead of a horizon.
//
// -consistency picks the default query lane: "fresh" (queries ride
// each shard's ingest FIFO and observe every prior batch) or "fast"
// (bounded priority lane — queries are served ahead of queued ingest
// batches, bounding p99 under ingest pressure at the cost of bounded
// staleness). Clients override per request with ?consistency=.
//
// The API (see internal/server): POST /v1/ingest, GET /v1/topk,
// GET /v1/estimate, GET /v1/stats, POST /v1/snapshot, POST /v1/restore,
// GET /metrics (Prometheus text format).
// SIGINT/SIGTERM drain in-flight requests, take a final snapshot when a
// snapshot directory is configured, and exit cleanly.
//
// Observability: -debug-addr starts a second listener serving
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, and the
// same /metrics page as the main listener — keep it on loopback or a
// management network; profiling endpoints are not for the public edge.
// -trace-every N samples 1-in-N requests for span tracing (queue wait,
// shard apply, merge), emitted as structured log lines with the
// request's X-Request-ID.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", ":8356", "listen address")
		dim         = flag.Int("dim", 0, "feature dimensionality d (required unless -restore)")
		samples     = flag.Int("samples", 100_000, "stream horizon T (ignored with -window)")
		window      = flag.Int("window", 0, "serve an unbounded stream with this effective sample window (sets λ = 1 − 1/window)")
		decay       = flag.Float64("decay", 0, "serve an unbounded stream with this per-step decay factor λ in (0,1]")
		shards      = flag.Int("shards", runtime.GOMAXPROCS(0), "shard workers N")
		engine      = flag.String("engine", "ascs", "serving engine: ascs, cs, asketch or coldfilter")
		tables      = flag.Int("tables", 5, "hash tables K per shard sketch")
		mem         = flag.Int("mem", 1_000_000, "total sketch budget in float64 cells across all shards")
		rng         = flag.Int("range", 0, "buckets per table per shard (overrides -mem)")
		alpha       = flag.Float64("alpha", 0.005, "assumed signal-pair sparsity for the warm-up solver")
		warmup      = flag.Int("warmup", 0, "warm-up prefix samples (default samples/20 when a warm-up is needed)")
		standardize = flag.Bool("standardize", true, "rescale features to unit variance from the warm-up prefix")
		track       = flag.Int("track", 1<<14, "retrieval candidates tracked per shard")
		consistency = flag.String("consistency", "fresh", "default query lane: fresh (queries ride the ingest FIFO, observe every prior batch) or fast (bounded priority lane: bounded tail latency under ingest pressure, bounded staleness); requests override with ?consistency=")
		queue       = flag.Int("queue", 64, "per-shard ingest queue depth (batches)")
		flush       = flag.Int("flush", 4096, "ops per routed ingest batch")
		maxBatch    = flag.Int("max-batch", 4096, "max samples per ingest request")
		seed        = flag.Uint64("seed", 1, "hash seed")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory (enables /v1/snapshot default dir and shutdown snapshot)")
		snapEvery   = flag.Duration("snapshot-every", 0, "periodic snapshot interval (requires -snapshot-dir)")
		restore     = flag.Bool("restore", false, "start from the snapshot in -snapshot-dir")
		debugAddr   = flag.String("debug-addr", "", "side listener for /debug/pprof/, /debug/vars and /metrics (keep on loopback; empty disables)")
		traceEvery  = flag.Int("trace-every", 0, "sample 1-in-N requests for span tracing to the log (0 disables)")
		admission   = flag.String("admission", "block", "ingest admission policy: block (backpressure on the shard FIFO), shed (429 + Retry-After when a shard queue is at bound) or degrade (shed + overload governor auto-routing fresh queries to the fast lane)")
		shedHW      = flag.Float64("shed-high-water", 1.0, "shard queue fill fraction that trips shedding (shed/degrade policies)")
		queryTO     = flag.Duration("query-timeout", 0, "default per-request deadline on query endpoints; past it queued work is abandoned and the request gets 503 (0 = client-disconnect bound only; ?timeout= overrides)")
		ingestTO    = flag.Duration("ingest-timeout", 0, "default per-request deadline on ingest delivery into the shard FIFOs (0 = client-disconnect bound only)")
		faultSpec   = flag.String("faults", "", "deterministic fault injection spec for chaos drills, e.g. 'latency=2ms@0.1,stall=0:50ms,drop=0.01,dup=0.01,fsyncerr,torn,seed=42' (never set in production)")
		foldIdle    = flag.Duration("fold-idle", 0, "fold idle shards to a coarser sketch after this much quiet time, reclaiming memory; the next ingest batch unfolds them (0 disables)")
		foldTicks   = flag.Int("fold-idle-ticks", 2, "consecutive quiet -fold-idle ticks before a shard folds")
		foldLevels  = flag.Int("fold-levels", 3, "fold depth for idle shards: each level halves sketch width (clamped to the sketch's maximum)")
		snapFold    = flag.Int("snapshot-fold", 0, "write snapshot blobs pre-folded by this many levels (2^L fewer sketch bytes; restored shards unfold on first ingest; 0 = full resolution)")
		walDir      = flag.String("wal-dir", "", "write-ahead-log directory: applied ingest batches are logged durably and replayed on restart, bounding crash loss to the -wal-sync policy (empty disables)")
		walSync     = flag.String("wal-sync", "batch", "WAL durability policy: batch (fsync per commit group), interval or an explicit duration (periodic fsync), or off (OS page cache only)")
		walSegBytes = flag.Int64("wal-segment-bytes", 64<<20, "WAL segment size before rotation (min 4096)")
	)
	flag.Parse()
	log.SetPrefix("ascsd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	policy, err := shard.ParseAdmission(*admission)
	if err != nil {
		log.Fatal(err)
	}
	injector, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if injector != nil {
		log.Printf("FAULT INJECTION ACTIVE: %s (chaos drill mode — never production)", *faultSpec)
	}

	if *walDir == "" && (*walSync != "batch" || *walSegBytes != 64<<20) {
		log.Fatal("-wal-sync and -wal-segment-bytes require -wal-dir")
	}

	mgr, err := buildManager(managerFlags{
		dim: *dim, samples: *samples, window: *window, decay: *decay,
		shards: *shards, engine: *engine,
		tables: *tables, mem: *mem, rng: *rng, alpha: *alpha, warmup: *warmup,
		standardize: *standardize, track: *track, queue: *queue, flush: *flush,
		consistency: *consistency,
		seed:        *seed, snapDir: *snapDir, restore: *restore,
		admission: policy, shedHighWater: *shedHW, faults: injector,
		foldIdle: *foldIdle, foldTicks: *foldTicks, foldLevels: *foldLevels,
		snapshotFold: *snapFold,
		walDir:       *walDir, walSync: *walSync, walSegBytes: *walSegBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if ws := mgr.WALStats(); ws != nil {
		log.Printf("WAL armed at %s (sync=%s): replayed %d records (%d ops, %d skipped) in %.3fs, resuming at seq %d",
			*walDir, ws.Sync, ws.Recovery.ReplayedRecords, ws.Recovery.ReplayedOps,
			ws.Recovery.SkippedRecords, ws.Recovery.DurationSeconds, ws.LastSeq)
		if ws.Recovery.Torn {
			log.Printf("WAL recovery truncated a torn tail (%d bytes) — loss bounded by the previous run's -wal-sync policy", ws.Recovery.TornBytes)
		}
	}
	// lastSnapStep tracks the step covered by the newest on-disk
	// snapshot, so a graceful shutdown can skip the final snapshot when
	// nothing was ingested since (clean restart cycles stay replay-free
	// without pointless churn). −1 = no snapshot taken this run; a
	// restore without WAL replay counts as covered (the on-disk state
	// already equals the live state).
	var lastSnapStep atomic.Int64
	lastSnapStep.Store(-1)
	if *restore {
		if ws := mgr.WALStats(); ws == nil || ws.Recovery.ReplayedRecords == 0 {
			lastSnapStep.Store(int64(mgr.Step()))
		}
	}
	// Managers built by POST /v1/restore keep the deployment's admission
	// policy and injector instead of the manifest's. The WAL fields make
	// the handler warn that a runtime restore serves undurably
	// (boot-time -restore is the recovery path).
	overrides := shard.RestoreOverrides{Admission: policy, Faults: injector}
	if *walDir != "" {
		overrides.WALDir, overrides.WALSync, overrides.WALSegmentBytes = *walDir, *walSync, *walSegBytes
	}
	srv := server.New(mgr, server.Options{
		SnapshotDir:      *snapDir,
		MaxBatch:         *maxBatch,
		TraceEvery:       *traceEvery,
		QueryTimeout:     *queryTO,
		IngestTimeout:    *ingestTO,
		RestoreOverrides: overrides,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(srv),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener on %s (/debug/pprof/, /debug/vars, /metrics)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	if *snapEvery > 0 {
		if *snapDir == "" {
			log.Fatal("-snapshot-every requires -snapshot-dir")
		}
		go periodicSnapshots(ctx, srv, *snapDir, *snapEvery, &lastSnapStep)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Bound slow clients: headers must arrive promptly and idle
		// keep-alive connections are reclaimed. No full ReadTimeout —
		// large ingest bodies may legitimately stream for a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	st, _ := mgr.Stats()
	if mgr.Unbounded() {
		log.Printf("serving on %s: dim=%d shards=%d engine=%s unbounded window=%d lambda=%.9g step=%d consistency=%s",
			*addr, mgr.Dim(), st.Shards, st.Engine, mgr.Window(), mgr.DecayFactor(), mgr.Step(), mgr.QueryConsistency())
	} else {
		log.Printf("serving on %s: dim=%d shards=%d engine=%s horizon=%d step=%d consistency=%s",
			*addr, mgr.Dim(), st.Shards, st.Engine, mgr.Horizon(), mgr.Step(), mgr.QueryConsistency())
	}

	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutCtx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
	if *snapDir != "" {
		// HTTP is drained, so the step is stable: skip the final snapshot
		// when the newest on-disk snapshot already covers it — a clean
		// restart never needs replay either way, and idle restart cycles
		// stop rewriting identical state.
		if cur := int64(srv.Manager().Step()); cur == lastSnapStep.Load() {
			log.Printf("final snapshot skipped: step %d already covered by the last snapshot in %s", cur, *snapDir)
		} else if err := snapshotNow(srv, *snapDir, &lastSnapStep); err != nil && !errors.Is(err, shard.ErrWarmingUp) {
			log.Printf("final snapshot: %v", err)
		} else if err == nil {
			log.Printf("final snapshot written to %s at step %d", *snapDir, srv.Manager().Step())
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}

type managerFlags struct {
	dim, samples, shards int
	window               int
	decay                float64
	engine               string
	tables, mem, rng     int
	alpha                float64
	warmup               int
	standardize          bool
	track, queue, flush  int
	consistency          string
	seed                 uint64
	snapDir              string
	restore              bool
	admission            shard.AdmissionPolicy
	shedHighWater        float64
	faults               *faults.Injector
	foldIdle             time.Duration
	foldTicks            int
	foldLevels           int
	snapshotFold         int
	walDir, walSync      string
	walSegBytes          int64
}

func buildManager(f managerFlags) (*shard.Manager, error) {
	// Validate the lane before any branch so `-restore -consistency
	// bogus` fails as fast as the same typo without -restore.
	lane, err := shard.ParseConsistency(f.consistency)
	if err != nil {
		return nil, err
	}
	if f.restore {
		if f.snapDir == "" {
			return nil, fmt.Errorf("-restore requires -snapshot-dir")
		}
		o := shard.RestoreOverrides{Admission: f.admission, Faults: f.faults}
		if f.walDir != "" {
			o.WALDir, o.WALSync, o.WALSegmentBytes = f.walDir, f.walSync, f.walSegBytes
		}
		mgr, err := shard.RestoreWith(f.snapDir, o)
		if err != nil {
			return nil, err
		}
		// The snapshot records the deployment's default lane; a
		// differing -consistency cannot silently win or silently lose.
		if lane != "" && lane != mgr.QueryConsistency() {
			log.Printf("restored snapshot's default query lane %q overrides -consistency %q (override per request with ?consistency=, or snapshot a deployment started with the desired default)",
				mgr.QueryConsistency(), lane)
		}
		return mgr, nil
	}
	if f.dim < 2 {
		return nil, fmt.Errorf("-dim is required (got %d)", f.dim)
	}
	var kind shard.Kind
	switch f.engine {
	case "ascs":
		kind = shard.KindASCS
	case "cs":
		kind = shard.KindCS
	case "asketch":
		kind = shard.KindASketch
	case "coldfilter":
		kind = shard.KindColdFilter
	default:
		return nil, fmt.Errorf("unknown engine %q (serving supports ascs, cs, asketch, coldfilter)", f.engine)
	}
	if f.tables < 1 {
		return nil, fmt.Errorf("-tables must be ≥ 1 (got %d)", f.tables)
	}
	// The mem→range split and warm-up sizing are the shared
	// shard.NewFromOptions rules (one derivation for the library, the
	// daemon, and the benchmark).
	var walDir, walSync string
	var walSegBytes int64
	if f.walDir != "" {
		walDir, walSync, walSegBytes = f.walDir, f.walSync, f.walSegBytes
	}
	return shard.NewFromOptions(shard.ServeOptions{
		Dim:              f.dim,
		Samples:          f.samples,
		Window:           f.window,
		Lambda:           f.decay,
		Shards:           f.shards,
		Kind:             kind,
		Tables:           f.tables,
		MemoryFloats:     f.mem,
		Range:            f.rng,
		Seed:             f.seed,
		Alpha:            f.alpha,
		Standardize:      f.standardize,
		Warmup:           f.warmup,
		QueueLen:         f.queue,
		FlushOps:         f.flush,
		TrackCandidates:  f.track,
		QueryConsistency: lane,
		Admission:        f.admission,
		ShedHighWater:    f.shedHighWater,
		Faults:           f.faults,
		FoldIdle:         f.foldIdle,
		FoldIdleTicks:    f.foldTicks,
		FoldLevels:       f.foldLevels,
		SnapshotFold:     f.snapshotFold,
		WALDir:           walDir,
		WALSync:          walSync,
		WALSegmentBytes:  walSegBytes,
	})
}

// debugMux assembles the side listener's handler tree: the pprof
// profiling endpoints, expvar's process counters, and the same
// Prometheus exposition the main listener mounts. Registered on a
// private mux — importing net/http/pprof for its DefaultServeMux side
// effect would silently expose profiling on the *service* port too.
func debugMux(srv *server.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("GET /metrics", srv.MetricsHandler())
	return mux
}

// periodicSnapshots checkpoints the live manager on a fixed cadence
// until ctx is cancelled (warm-up ticks are skipped).
func periodicSnapshots(ctx context.Context, srv *server.Server, dir string, every time.Duration, last *atomic.Int64) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := snapshotNow(srv, dir, last); err != nil {
				if !errors.Is(err, shard.ErrWarmingUp) {
					log.Printf("periodic snapshot: %v", err)
				}
				continue
			}
			log.Printf("snapshot written to %s at step %d", dir, srv.Manager().Step())
		}
	}
}

// snapshotNow checkpoints the live manager and records the covered
// step. The step is read before the cut, so concurrent ingest can only
// make the recorded coverage conservative (an unnecessary shutdown
// snapshot, never a skipped necessary one).
func snapshotNow(srv *server.Server, dir string, last *atomic.Int64) error {
	mgr := srv.Manager()
	step := int64(mgr.Step())
	if err := mgr.Snapshot(dir); err != nil {
		return err
	}
	last.Store(step)
	return nil
}
