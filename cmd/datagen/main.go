// Command datagen materializes the synthetic workloads to LIBSVM files,
// for inspection or for feeding other tools.
//
//	datagen -name simulation -dim 500 -samples 2000 -out sim.libsvm
//	datagen -name dna -kmer 8 -samples 10000 -out dna.libsvm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/stream"
)

func main() {
	var (
		name    = flag.String("name", "simulation", "workload: simulation, gisette, epsilon, cifar10, rcv1, sector, url, dna")
		dim     = flag.Int("dim", 500, "feature dimensionality (ignored for dna)")
		kmer    = flag.Int("kmer", 8, "k-mer length for dna")
		samples = flag.Int("samples", 2000, "number of samples")
		seed    = flag.Int64("seed", 42, "random seed")
		out     = flag.String("out", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	var (
		src stream.Source
		err error
	)
	switch *name {
	case "url":
		src, err = dataset.DefaultURLConfig(*dim, *seed).NewSource(*samples)
	case "dna":
		src, err = dataset.DefaultDNAConfig(*kmer, *seed).NewSource(*samples)
	default:
		var ds *dataset.Dataset
		ds, err = dataset.ByName(*name, dataset.Scale{Dim: *dim, Samples: *samples}, *seed)
		if err == nil {
			src = ds.Source()
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	f := os.Stdout
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
	}
	w := stream.NewLIBSVMWriter(f)
	n := 0
	for {
		s, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(0, s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d samples (dim %d) to %s\n", n, src.Dim(), *out)
}
