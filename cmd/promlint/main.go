// Command promlint validates a Prometheus text-format (0.0.4)
// exposition page with the internal checker (internal/obs.Lint): HELP/
// TYPE comment shape, name and label charsets, family contiguity,
// duplicate series, and cumulative-histogram consistency.
//
//	promlint page.txt            # lint a file
//	curl -s :8356/metrics | promlint   # lint a live scrape
//
// Exit status 0 when the page is well-formed, 1 with a diagnostic on
// the first violation. CI runs it against a live ascsd scrape so a
// malformed metric cannot ship.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	switch len(os.Args) {
	case 1:
	case 2:
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: promlint [file]  (reads stdin without a file)")
		os.Exit(2)
	}
	if err := obs.Lint(in); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
}
