// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run table4,fig6 -scale medium -seed 42
//	experiments -run all -scale small
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids ("+strings.Join(experiments.Names(), ",")+") or 'all'")
		scale = flag.String("scale", "small", "dataset scale: small, medium, paper")
		seed  = flag.Int64("seed", 42, "random seed")
		reps  = flag.Int("reps", 0, "replicates for bootstrap experiments (0 = scale default)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	switch *scale {
	case "small":
		opt.Scale = dataset.SmallScale()
		opt.Reps = 100
	case "medium":
		opt.Scale = dataset.MediumScale()
		opt.Reps = 300
	case "paper":
		opt.Scale = dataset.PaperScale()
		opt.Reps = 1000
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (small|medium|paper)\n", *scale)
		os.Exit(2)
	}
	if *reps > 0 {
		opt.Reps = *reps
	}

	ids := experiments.Names()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		fmt.Printf("==> %s (scale=%s seed=%d)\n", id, *scale, *seed)
		start := time.Now()
		if err := experiments.Run(id, opt, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("<== %s done in %s\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
