package ascs

import (
	"fmt"

	"repro/internal/core"
)

// TheoryParams exposes the §6 analysis inputs for standalone use: sizing
// a deployment, validating the theorem bounds, or solving a schedule for
// ManualSchedule mean sketches.
type TheoryParams struct {
	// P is the number of stream variables (p = d(d−1)/2 for pairs).
	P int64
	// T is the stream length.
	T int
	// K and R are the sketch shape (tables × buckets).
	K, R int
	// U is the (lower bound on the) signal strength.
	U float64
	// Sigma is the common standard deviation of the variables.
	Sigma float64
	// Alpha is the signal sparsity.
	Alpha float64
	// Delta and DeltaStar are the §6 miss-probability budgets; when both
	// are zero the §8.1 defaults (δ = max(1.01·SP, 0.05), δ* = δ+0.15)
	// are applied.
	Delta, DeltaStar float64
	// Tau0 is the initial sampling threshold (default 1e-4).
	Tau0 float64
}

func (tp TheoryParams) toCore() core.Params {
	p := core.Params{
		P: tp.P, T: tp.T, K: tp.K, R: tp.R,
		U: tp.U, Sigma: tp.Sigma, Alpha: tp.Alpha,
		Delta: tp.Delta, DeltaStar: tp.DeltaStar,
		Tau0: tp.Tau0, Gamma: 30,
	}
	if p.Tau0 == 0 {
		p.Tau0 = 1e-4
	}
	if p.Delta == 0 && p.DeltaStar == 0 {
		p = p.WithSuggestedDeltas()
	}
	return p
}

// Schedule is the solved ASCS schedule: explore for T0 samples, then
// sample with threshold τ(t) = Tau0 + (Theta/T)(t − T0).
type Schedule struct {
	T0    int
	Theta float64
	Tau0  float64
	T     int
	// SaturationProb is 1 − p0^K: the worst-case floor of the Theorem 1
	// bound; Delta targets below it are relaxed (see DESIGN.md).
	SaturationProb float64
	// DeltaFeasible records whether the requested Delta was achievable
	// as stated by Theorem 1.
	DeltaFeasible bool
}

func scheduleFrom(h core.Hyperparams) Schedule {
	return Schedule{
		T0: h.T0, Theta: h.Theta, Tau0: h.Tau0, T: h.T,
		SaturationProb: h.SaturationProb, DeltaFeasible: h.DeltaFeasible,
	}
}

func (s Schedule) toCore() core.Hyperparams {
	return core.Hyperparams{T0: s.T0, Theta: s.Theta, Tau0: s.Tau0, T: s.T}
}

// Threshold returns τ(t).
func (s Schedule) Threshold(t int) float64 { return s.toCore().Threshold(t) }

// String renders the schedule.
func (s Schedule) String() string {
	return fmt.Sprintf("explore %d/%d samples, then τ(t) = %.3g + %.4g·(t−%d)/%d",
		s.T0, s.T, s.Tau0, s.Theta, s.T0, s.T)
}

// SolveSchedule runs Algorithm 3: it picks the exploration length T0
// (Theorem 1) and threshold slope θ (Theorem 2) so the probability of
// missing a signal variable is bounded by DeltaStar.
func SolveSchedule(tp TheoryParams) (Schedule, error) {
	hp, err := tp.toCore().Solve()
	if err != nil {
		return Schedule{}, err
	}
	return scheduleFrom(hp), nil
}

// Theorem1Bound returns the §6.4 upper bound on the probability of
// missing a signal at time t0 with initial threshold tau0.
func (tp TheoryParams) Theorem1Bound(t0 int, tau0 float64) float64 {
	return tp.toCore().Theorem1Bound(t0, tau0)
}

// Theorem2Bound returns the §6.5 upper bound on the probability that a
// surviving signal is dropped during sampling, for threshold slope theta.
func (tp TheoryParams) Theorem2Bound(t0 int, tau0, theta float64) float64 {
	return tp.toCore().Theorem2Bound(t0, tau0, theta)
}

// SNRGainBound returns the Theorem 3 lower bound on
// SNR_ASCS(t)/SNR_CS for a schedule solved from these parameters.
func (tp TheoryParams) SNRGainBound(t int, s Schedule) float64 {
	return tp.toCore().ROSNRBound(t, s.T0, s.Theta)
}

// SaturationProb returns 1 − p0^K (§6.4).
func (tp TheoryParams) SaturationProb() float64 { return tp.toCore().SaturationProb() }
