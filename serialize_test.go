package ascs

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestMeanSketchCheckpointResumeCS(t *testing.T) {
	ms, err := NewMeanSketch(MeanConfig{Tables: 4, Range: 128, Samples: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewMeanSketch(MeanConfig{Tables: 4, Range: 128, Samples: 100, Seed: 2})
	rng := rand.New(rand.NewSource(6))
	feed := func(s *MeanSketch, from, to int) {
		r := rand.New(rand.NewSource(6))
		skip := (from - 1) * 20
		for i := 0; i < skip; i++ {
			r.NormFloat64()
		}
		_ = rng
		for step := from; step <= to; step++ {
			s.BeginStep(step)
			for k := uint64(0); k < 20; k++ {
				s.Offer(k, r.NormFloat64()+float64(k)/10)
			}
		}
	}
	feed(ms, 1, 60)
	feed(ref, 1, 60)
	var buf bytes.Buffer
	if _, err := ms.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadMeanSketchFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Kind() != "CS" {
		t.Errorf("Kind = %q", restored.Kind())
	}
	feed(restored, 61, 100)
	feed(ref, 61, 100)
	for k := uint64(0); k < 20; k++ {
		if restored.Estimate(k) != ref.Estimate(k) {
			t.Fatalf("estimate mismatch at key %d: %v vs %v", k, restored.Estimate(k), ref.Estimate(k))
		}
	}
}

func TestMeanSketchCheckpointResumeASCS(t *testing.T) {
	tp := TheoryParams{P: 500, T: 300, K: 4, R: 64, U: 0.6, Sigma: 1, Alpha: 0.01}
	sched, err := SolveSchedule(tp)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *MeanSketch {
		m, err := NewMeanSketch(MeanConfig{Tables: 4, Range: 64, Samples: 300, Seed: 3, Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ms, ref := mk(), mk()
	feed := func(s *MeanSketch, from, to int, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for step := from; step <= to; step++ {
			s.BeginStep(step)
			for k := uint64(0); k < 50; k++ {
				x := r.NormFloat64()
				if k < 5 {
					x += 0.8
				}
				s.Offer(k, x)
			}
		}
	}
	// Checkpoint mid-sampling-period.
	mid := sched.T0 + 50
	if mid > 280 {
		mid = 280
	}
	feed(ms, 1, mid, 9)
	feed(ref, 1, mid, 9)
	var buf bytes.Buffer
	if _, err := ms.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadMeanSketchFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Kind() != "ASCS" {
		t.Errorf("Kind = %q", restored.Kind())
	}
	feed(restored, mid+1, 300, 77)
	feed(ref, mid+1, 300, 77)
	for k := uint64(0); k < 50; k++ {
		if restored.Estimate(k) != ref.Estimate(k) {
			t.Fatalf("estimate mismatch at key %d", k)
		}
	}
	if restored.SampledFraction() != ref.SampledFraction() {
		t.Error("sampled fraction mismatch after resume")
	}
}

func TestReadMeanSketchFromErrors(t *testing.T) {
	if _, err := ReadMeanSketchFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadMeanSketchFrom(bytes.NewReader([]byte{7})); err == nil {
		t.Error("unknown tag should error")
	}
	if _, err := ReadMeanSketchFrom(bytes.NewReader([]byte{0, 1, 2})); err == nil {
		t.Error("truncated CS body should error")
	}
	if _, err := ReadMeanSketchFrom(bytes.NewReader([]byte{1, 1, 2})); err == nil {
		t.Error("truncated ASCS body should error")
	}
}
