package ascs_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"

	ascs "repro"
)

// TestShardedPublicAPI exercises the exported serving layer: batch
// ingest with auto-tuned ASCS, live retrieval, snapshot, restore.
func TestShardedPublicAPI(t *testing.T) {
	const d, n = 60, 1200
	ds := dataset.Simulation(d, n, 0.015, 11)
	sh, err := ascs.NewSharded(ascs.ShardedConfig{
		Dim: d, Samples: n, Shards: 4, MemoryFloats: 200_000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if !sh.Warming() {
		t.Fatal("expected warm-up buffering at start")
	}
	if _, err := sh.Top(5); !errors.Is(err, ascs.ErrWarmingUp) {
		t.Fatalf("Top while warming: %v, want ErrWarmingUp", err)
	}
	batch := make([]ascs.Sample, 0, 100)
	for i, row := range ds.Rows {
		var s ascs.Sample
		for j, v := range row {
			if v != 0 {
				s.Indices = append(s.Indices, j)
				s.Values = append(s.Values, v)
			}
		}
		batch = append(batch, s)
		if len(batch) == 100 || i == len(ds.Rows)-1 {
			if err := sh.ObserveBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if sh.Observed() != n {
		t.Fatalf("Observed = %d, want %d", sh.Observed(), n)
	}

	top, err := sh.TopMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("TopMagnitude returned %d pairs", len(top))
	}
	signals := 0
	for _, p := range top {
		c, err := ds.Corr()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(c.At(p.A, p.B)) >= 0.5 {
			signals++
		}
	}
	if signals < 7 {
		t.Fatalf("only %d/10 retrieved pairs are planted signals", signals)
	}

	est, err := sh.Estimate(top[0].A, top[0].B)
	if err != nil {
		t.Fatal(err)
	}
	if est != top[0].Estimate {
		t.Fatalf("Estimate %v != retrieval estimate %v", est, top[0].Estimate)
	}

	// With no ingest in flight both query lanes serve identical answers.
	for _, lane := range []ascs.Consistency{ascs.ConsistencyFresh, ascs.ConsistencyFast} {
		lest, err := sh.EstimateC(top[0].A, top[0].B, lane)
		if err != nil {
			t.Fatal(err)
		}
		if lest != est {
			t.Fatalf("EstimateC(%s) = %v, want %v", lane, lest, est)
		}
		ltop, err := sh.TopMagnitudeC(10, lane)
		if err != nil {
			t.Fatal(err)
		}
		if len(ltop) != len(top) || ltop[0] != top[0] {
			t.Fatalf("TopMagnitudeC(%s) diverges: %+v", lane, ltop[0])
		}
	}

	st, err := sh.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 || st.Step != n || st.Ops == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.QueryConsistency != string(ascs.ConsistencyFresh) {
		t.Fatalf("default query lane = %q, want fresh", st.QueryConsistency)
	}

	dir := t.TempDir()
	if err := sh.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := ascs.RestoreSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	rtop, err := restored.TopMagnitude(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rtop {
		if rtop[i] != top[i] {
			t.Fatalf("restored topk[%d] = %+v, want %+v", i, rtop[i], top[i])
		}
	}
}

// TestShardedDecayLambdaOnly pins the config fix: DecayLambda in (0,1)
// derives its own normalizer from the effective window, so Samples may
// be left zero.
func TestShardedDecayLambdaOnly(t *testing.T) {
	sh, err := ascs.NewSharded(ascs.ShardedConfig{
		Dim: 20, Shards: 2, MemoryFloats: 40_000,
		Engine: ascs.EngineCS, Standardize: boolPtr(false),
		DecayLambda: 0.999, // window ≈ 1000, Samples intentionally unset
	})
	if err != nil {
		t.Fatalf("DecayLambda-only config rejected: %v", err)
	}
	defer sh.Close()
	if !sh.Unbounded() || sh.Window() != 1000 {
		t.Fatalf("unbounded=%v window=%d, want unbounded with window 1000", sh.Unbounded(), sh.Window())
	}
	if err := sh.Observe([]int{0, 1}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func boolPtr(b bool) *bool { return &b }
