package ascs

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 1, Samples: 100, MemoryFloats: 100},
		{Dim: 10, Samples: 2, MemoryFloats: 100},
		{Dim: 10, Samples: 100},
		{Dim: 10, Samples: 100, MemoryFloats: 100, Tables: 100},
		{Dim: 10, Samples: 100, MemoryFloats: 5},
		{Dim: 10, Samples: 100, MemoryFloats: 100, Alpha: 2},
		{Dim: 10, Samples: 100, MemoryFloats: 100, WarmupFraction: 0.9},
	}
	for i, cfg := range bad {
		if _, err := NewEstimator(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Dim: 10, Samples: 100, MemoryFloats: 500}
	if _, err := NewEstimator(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineASCS.String() != "ASCS" || EngineCS.String() != "CS" || EngineASketch.String() != "ASketch" {
		t.Error("engine names wrong")
	}
	if EngineKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

// correlatedRows makes a dataset with a single strongly correlated
// feature pair (2, 7).
func correlatedRows(d, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		z := rng.NormFloat64()
		row[2] = z
		row[7] = 0.9*z + 0.436*rng.NormFloat64()
		for j := 0; j < d; j++ {
			if j != 2 && j != 7 {
				row[j] = rng.NormFloat64()
			}
		}
		rows[i] = row
	}
	return rows
}

func TestEstimatorFindsPlantedPair(t *testing.T) {
	const d, n = 30, 1500
	rows := correlatedRows(d, n, 3)
	for _, engine := range []EngineKind{EngineASCS, EngineCS, EngineASketch} {
		est, err := NewEstimator(Config{
			Dim: d, Samples: n, MemoryFloats: 2000, Engine: engine, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			if err := est.ObserveDense(row); err != nil {
				t.Fatal(err)
			}
		}
		top, err := est.Top(1)
		if err != nil {
			t.Fatal(err)
		}
		if top[0].A != 2 || top[0].B != 7 {
			t.Errorf("%v: top pair = (%d,%d), want (2,7)", engine, top[0].A, top[0].B)
		}
		// Standardized estimate approximates the correlation 0.9.
		if math.Abs(top[0].Estimate-0.9) > 0.25 {
			t.Errorf("%v: estimate %.3f far from 0.9", engine, top[0].Estimate)
		}
		if est.Observed() != n {
			t.Errorf("Observed = %d", est.Observed())
		}
		if est.MemoryBytes() <= 0 {
			t.Error("MemoryBytes should be positive after warm-up")
		}
	}
}

func TestEstimatorSparseObserve(t *testing.T) {
	const d, n = 50, 800
	rng := rand.New(rand.NewSource(5))
	est, err := NewEstimator(Config{Dim: d, Samples: n, MemoryFloats: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Features 10 and 20 co-fire half the time.
		if rng.Float64() < 0.5 {
			v := 1 + rng.Float64()
			if err := est.Observe([]int{10, 20}, []float64{v, v}); err != nil {
				t.Fatal(err)
			}
		} else {
			j := rng.Intn(d)
			if err := est.Observe([]int{j}, []float64{1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	top, err := est.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].A != 10 || top[0].B != 20 {
		t.Errorf("top = %+v", top[0])
	}
}

func TestEstimatorObserveErrors(t *testing.T) {
	est, _ := NewEstimator(Config{Dim: 5, Samples: 10, MemoryFloats: 50})
	if err := est.Observe([]int{9}, []float64{1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := est.ObserveDense([]float64{1, 2}); err == nil {
		t.Error("wrong-length dense row accepted")
	}
	for i := 0; i < 10; i++ {
		if err := est.ObserveDense(make([]float64, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := est.ObserveDense(make([]float64, 5)); err == nil {
		t.Error("overrun accepted")
	}
}

func TestEstimatorShortStreamStillAnswers(t *testing.T) {
	// Fewer samples than the warm-up buffer: Top must still work.
	est, _ := NewEstimator(Config{Dim: 8, Samples: 1000, MemoryFloats: 200, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		z := rng.NormFloat64()
		row := []float64{z, z, rng.NormFloat64(), rng.NormFloat64(), 0, 0, 0, 0}
		if err := est.ObserveDense(row); err != nil {
			t.Fatal(err)
		}
	}
	top, err := est.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].A != 0 || top[0].B != 1 {
		t.Errorf("top = %+v", top[0])
	}
}

func TestEstimatorNoSamples(t *testing.T) {
	est, _ := NewEstimator(Config{Dim: 8, Samples: 100, MemoryFloats: 200})
	if _, err := est.Top(1); err == nil {
		t.Error("Top with no samples should error")
	}
}

func TestEstimatorEstimatePair(t *testing.T) {
	const d, n = 20, 1000
	rows := correlatedRows(d, n, 9)
	est, _ := NewEstimator(Config{Dim: d, Samples: n, MemoryFloats: 2000, Seed: 1})
	for _, row := range rows {
		if err := est.ObserveDense(row); err != nil {
			t.Fatal(err)
		}
	}
	v, err := est.Estimate(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.9) > 0.3 {
		t.Errorf("Estimate(2,7) = %v", v)
	}
	if _, err := est.Estimate(3, 3); err == nil {
		t.Error("diagonal pair should error")
	}
	if _, err := est.Estimate(-1, 2); err == nil {
		t.Error("negative index should error")
	}
}

func TestEstimatorASCSScheduleExposed(t *testing.T) {
	const d, n = 30, 1200
	rows := correlatedRows(d, n, 11)
	est, _ := NewEstimator(Config{Dim: d, Samples: n, MemoryFloats: 500, Engine: EngineASCS, Seed: 1})
	for _, row := range rows {
		if err := est.ObserveDense(row); err != nil {
			t.Fatal(err)
		}
	}
	s := est.Schedule()
	if s.T != n || s.T0 <= 0 {
		t.Errorf("schedule = %+v", s)
	}
	if s.String() == "" {
		t.Error("schedule should render")
	}
}

func TestSolveScheduleAndBounds(t *testing.T) {
	tp := TheoryParams{
		P: 499500, T: 6000, K: 5, R: 25000,
		U: 0.5, Sigma: 1, Alpha: 0.005,
	}
	s, err := SolveSchedule(tp)
	if err != nil {
		t.Fatal(err)
	}
	if s.T0 <= 0 || s.T0 >= tp.T || s.Theta <= 0 {
		t.Errorf("schedule = %+v", s)
	}
	if b := tp.Theorem1Bound(s.T0, s.Tau0); b > 1 || b < tp.SaturationProb()-1e-9 {
		t.Errorf("Theorem1Bound = %v", b)
	}
	if b := tp.Theorem2Bound(s.T0, s.Tau0, s.Theta); b < 0 {
		t.Errorf("Theorem2Bound = %v", b)
	}
	if g := tp.SNRGainBound(tp.T, s); g <= 1 {
		t.Errorf("SNR gain bound = %v, want > 1 at stream end", g)
	}
	// Threshold schedule sanity.
	if s.Threshold(s.T0) != s.Tau0 {
		t.Error("threshold at T0 should be tau0")
	}
	if s.Threshold(tp.T) <= s.Tau0 {
		t.Error("threshold should rise")
	}
	// Invalid parameters propagate.
	tp.U = -1
	if _, err := SolveSchedule(tp); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestMeanSketchCSAndASCS(t *testing.T) {
	const (
		p    = 1000
		T    = 1500
		nsig = 10
	)
	tp := TheoryParams{P: p, T: T, K: 5, R: 50, U: 0.5, Sigma: 1, Alpha: float64(nsig) / p}
	sched, err := SolveSchedule(tp)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewMeanSketch(MeanConfig{Tables: 5, Range: 50, Samples: T, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	as, err := NewMeanSketch(MeanConfig{Tables: 5, Range: 50, Samples: T, Seed: 3, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kind() != "CS" || as.Kind() != "ASCS" {
		t.Errorf("kinds: %s %s", cs.Kind(), as.Kind())
	}
	rng := rand.New(rand.NewSource(8))
	for step := 1; step <= T; step++ {
		cs.BeginStep(step)
		as.BeginStep(step)
		for i := 0; i < p; i++ {
			x := rng.NormFloat64()
			if i < nsig {
				x += 0.75
			}
			cs.Offer(uint64(i), x)
			as.Offer(uint64(i), x)
		}
	}
	// Both must estimate signal means reasonably; ASCS must have
	// filtered a majority of the sampling-period offers.
	for i := 0; i < nsig; i++ {
		if v := as.Estimate(uint64(i)); math.Abs(v-0.75) > 0.5 {
			t.Errorf("ASCS estimate(%d) = %v", i, v)
		}
	}
	if f := as.SampledFraction(); !(f < 0.7) {
		t.Errorf("sampled fraction = %v", f)
	}
	if !math.IsNaN(cs.SampledFraction()) {
		t.Error("CS sampled fraction should be NaN")
	}
	if cs.MemoryBytes() != as.MemoryBytes() {
		t.Error("equal shapes should have equal memory")
	}
}

func TestMeanSketchValidation(t *testing.T) {
	if _, err := NewMeanSketch(MeanConfig{Tables: 0, Range: 10, Samples: 5}); err == nil {
		t.Error("bad shape accepted")
	}
	if _, err := NewMeanSketch(MeanConfig{Tables: 2, Range: 10, Samples: 5,
		Schedule: Schedule{T0: 2, Theta: 0.1, T: 99}}); err == nil {
		t.Error("schedule/samples mismatch accepted")
	}
}

func TestEstimatorColdFilterEngine(t *testing.T) {
	const d, n = 30, 1500
	rows := correlatedRows(d, n, 3)
	est, err := NewEstimator(Config{
		Dim: d, Samples: n, MemoryFloats: 2000, Engine: EngineColdFilter, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if err := est.ObserveDense(row); err != nil {
			t.Fatal(err)
		}
	}
	top, err := est.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].A != 2 || top[0].B != 7 {
		t.Errorf("ColdFilter top pair = (%d,%d), want (2,7)", top[0].A, top[0].B)
	}
	if EngineColdFilter.String() != "ColdFilter" {
		t.Error("name wrong")
	}
}

func TestTopMagnitudeFindsNegativeSignals(t *testing.T) {
	const d, n = 25, 1500
	rng := rand.New(rand.NewSource(21))
	est, err := NewEstimator(Config{Dim: d, Samples: n, MemoryFloats: 2500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		z := rng.NormFloat64()
		row[3] = z
		row[9] = -0.95*z + 0.31*rng.NormFloat64() // strong NEGATIVE correlation
		for j := 0; j < d; j++ {
			if j != 3 && j != 9 {
				row[j] = rng.NormFloat64()
			}
		}
		if err := est.ObserveDense(row); err != nil {
			t.Fatal(err)
		}
	}
	top, err := est.TopMagnitude(1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].A != 3 || top[0].B != 9 {
		t.Fatalf("TopMagnitude = %+v, want pair (3,9)", top[0])
	}
	if top[0].Estimate >= 0 {
		t.Errorf("estimate should keep its negative sign, got %v", top[0].Estimate)
	}
	// Signed Top must NOT rank the negative pair first.
	signed, err := est.Top(1)
	if err != nil {
		t.Fatal(err)
	}
	if signed[0].A == 3 && signed[0].B == 9 {
		t.Error("signed Top should prefer positive estimates")
	}
}
