// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per exhibit, reporting the headline quality metric alongside
// wall-clock), plus micro-benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The exhibits run at a reduced scale; `cmd/experiments -scale medium`
// (or `paper`) regenerates them at larger sizes.
package ascs_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/pairs"
	"repro/internal/shard"
	"repro/internal/stream"

	ascs "repro"
)

// benchOptions sizes the exhibit benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale:    dataset.Scale{Dim: 160, Samples: 1000},
		Seed:     42,
		Reps:     60,
		K:        5,
		RDivisor: 25,
	}
}

func BenchmarkFig1CorrelationCDF(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MeanStdCDF(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3IndependenceHist(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4QQNormality(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SNRRatio(b *testing.B) {
	opt := benchOptions()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(opt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series["simulation"]
		if len(s) > 0 {
			last = s[len(s)-1].Measured
		}
	}
	b.ReportMetric(last, "final-ROSNR")
}

func BenchmarkFig6F1(b *testing.B) {
	opt := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(opt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		gap = fig6Gap(res)
	}
	b.ReportMetric(gap, "ASCS-minus-CS-F1")
}

func BenchmarkFig6AlphaRobustness(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6Alpha(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// fig6Gap averages (best ASCS curve − CS curve) across datasets.
func fig6Gap(res experiments.Fig6Result) float64 {
	total, n := 0.0, 0
	for _, curves := range res.Curves {
		var cs, best float64
		for _, c := range curves {
			m := 0.0
			for _, f := range c.F1 {
				m += f
			}
			m /= float64(len(c.F1))
			if c.Label == "CS" {
				cs = m
			} else if m > best {
				best = m
			}
		}
		total += best - cs
		n++
	}
	return total / float64(n)
}

func BenchmarkTable1TheoremValidation(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2LargeScale(b *testing.B) {
	opt := benchOptions()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(opt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: ASCS−CS at the tightest URL memory row.
		for _, row := range res.Rows {
			if row.Dataset == "URL" {
				gain = row.MeanTopCorr["ASCS"] - row.MeanTopCorr["CS"]
				break
			}
		}
	}
	b.ReportMetric(gain, "ASCS-minus-CS@tight")
}

func BenchmarkTable3Roster(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4TopFraction(b *testing.B) {
	opt := benchOptions()
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(opt, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		n := 0
		for _, name := range dataset.SmallNames() {
			cs, _ := res.Cell(name, "CS")
			as, _ := res.Cell(name, "ASCS")
			if len(cs.ByFraction) > 2 && len(as.ByFraction) > 2 {
				gap += as.ByFraction[2] - cs.ByFraction[2]
				n++
			}
		}
		gap /= float64(n)
	}
	b.ReportMetric(gap, "ASCS-minus-CS@0.1αp")
}

func BenchmarkTable5KSensitivity(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6Timing(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSchedule(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSchedule(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGate(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGate(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHash(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHash(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorOfferCS measures the per-offer cost of the vanilla
// engine through the public API (dense samples, pair enumeration
// included).
func BenchmarkEstimatorOfferCS(b *testing.B)   { benchEstimatorOffer(b, ascs.EngineCS) }
func BenchmarkEstimatorOfferASCS(b *testing.B) { benchEstimatorOffer(b, ascs.EngineASCS) }

func benchEstimatorOffer(b *testing.B, kind ascs.EngineKind) {
	const d = 64 // 2016 pairs per dense sample
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 256)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	samples := b.N/256 + 2*256
	est, err := ascs.NewEstimator(ascs.Config{
		Dim: d, Samples: samples * 256, MemoryFloats: 4096, Engine: kind, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := est.ObserveDense(rows[i%256]); err != nil {
			b.Fatal(err)
		}
	}
	// Offers per Observe: d(d-1)/2 = 2016 pair updates each.
}

// BenchmarkMeanSketchOffer measures the raw keyed-offer path.
func BenchmarkMeanSketchOffer(b *testing.B) {
	ms, err := ascs.NewMeanSketch(ascs.MeanConfig{Tables: 5, Range: 1 << 14, Samples: 1 << 30, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ms.BeginStep(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Offer(uint64(i), 1.0)
	}
}

// benchKeys is the working set of the ingest micro-benchmarks: large
// enough to defeat trivial caching of one key, small enough that every
// key stays admitted through the ASCS gate once primed.
const benchKeys = 1024

// newSamplingMeanSketch builds a mean sketch in the regime the paper's
// throughput numbers measure: ASCS in its sampling phase with a primed
// working set every offer of which passes the τ gate (the tracked,
// admitted-pair hot path), or vanilla CS when schedule is false.
func newSamplingMeanSketch(b testing.TB, schedule bool) *ascs.MeanSketch {
	return newSamplingMeanSketchKeys(b, schedule, benchKeys)
}

// newSamplingMeanSketchKeys is newSamplingMeanSketch with an explicit
// primed-working-set size (the row arms prime a whole triangle's pair
// range, which is slightly larger than benchKeys).
func newSamplingMeanSketchKeys(b testing.TB, schedule bool, nkeys int) *ascs.MeanSketch {
	b.Helper()
	cfg := ascs.MeanConfig{Tables: 5, Range: 1 << 14, Samples: 1 << 30, Seed: 1}
	if schedule {
		cfg.Schedule = ascs.Schedule{T0: 1, Theta: 0, Tau0: 1e-12, T: cfg.Samples}
	}
	ms, err := ascs.NewMeanSketch(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ms.BeginStep(1)
	for k := 0; k < nkeys; k++ {
		ms.Offer(uint64(k), 1e6)
	}
	ms.BeginStep(2) // past T0: ASCS is sampling; primed keys clear τ
	return ms
}

// BenchmarkIngestPerCall* is the per-call tracked ingest pair — Offer
// through the Ingestor interface plus the separate Estimate the
// candidate tracker used to make — for comparison with the fused paths
// below (ns/op is ns per offered pair in all of them).
func BenchmarkIngestPerCallASCS(b *testing.B) { benchIngestPerCall(b, true) }
func BenchmarkIngestPerCallCS(b *testing.B)   { benchIngestPerCall(b, false) }

func benchIngestPerCall(b *testing.B, schedule bool) {
	ms := newSamplingMeanSketch(b, schedule)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		key := uint64(i % benchKeys)
		ms.Offer(key, 1e6)
		sink += ms.Estimate(key)
	}
	_ = sink
}

// BenchmarkIngestOfferEstimate* is the fused fast path: one hash of the
// key serves the gate, the insert, and the tracker estimate.
func BenchmarkIngestOfferEstimateASCS(b *testing.B) { benchIngestOfferEstimate(b, true) }
func BenchmarkIngestOfferEstimateCS(b *testing.B)   { benchIngestOfferEstimate(b, false) }

func benchIngestOfferEstimate(b *testing.B, schedule bool) {
	ms := newSamplingMeanSketch(b, schedule)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		est, _ := ms.OfferEstimate(uint64(i%benchKeys), 1e6)
		sink += est
	}
	_ = sink
}

// BenchmarkIngestOfferPairs* adds batching on top of the fused path:
// one interface call per chunk of pairs instead of one per pair (wave
// group pinned to 1 — the scalar batch loop, the pre-wave number).
func BenchmarkIngestOfferPairsASCS(b *testing.B) { benchIngestOfferPairs(b, true, 1) }
func BenchmarkIngestOfferPairsCS(b *testing.B)   { benchIngestOfferPairs(b, false, 1) }

// BenchmarkIngestOfferPairsWave* is the wave-pipelined group path at
// the default group size: group hashing, touch/prefetch of the K·G
// cells so their misses overlap, gather, gate/scatter. At this
// cache-resident record config the win over the scalar batch loop is
// modest; the range sweep in cmd/ascsbench shows the DRAM-resident
// regime the pipeline exists for.
func BenchmarkIngestOfferPairsWaveASCS(b *testing.B) { benchIngestOfferPairs(b, true, 0) }
func BenchmarkIngestOfferPairsWaveCS(b *testing.B)   { benchIngestOfferPairs(b, false, 0) }

// benchIngestOfferPairs measures OfferPairs with the given wave group
// (0 = default wave group, 1 = scalar batch loop).
func benchIngestOfferPairs(b *testing.B, schedule bool, group int) {
	ms := newSamplingMeanSketch(b, schedule)
	if group > 0 {
		ms.SetWaveGroup(group)
	}
	const chunk = 512
	// The chunks walk the full primed working set so the cache footprint
	// matches the per-call and OfferEstimate arms exactly.
	keys := make([]uint64, benchKeys)
	xs := make([]float64, benchKeys)
	ests := make([]float64, benchKeys)
	for i := range keys {
		keys[i] = uint64(i)
		xs[i] = 1e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	pos := 0
	for lo := 0; lo < b.N; lo += chunk {
		n := chunk
		if lo+n > b.N {
			n = b.N - lo
		}
		if pos+n > benchKeys {
			pos = 0
		}
		ms.OfferPairs(keys[pos:pos+n], xs[pos:pos+n], ests[pos:pos+n])
		pos += n
	}
}

// TestWaveOfferPairsZeroAllocs guards the wave group pipeline's scratch
// discipline at the engine layer: once the per-engine Wave scratch is
// built (first OfferPairs call), the steady-state group path — group
// hashing, touch, screen, gather, gate/scatter — performs zero
// allocations per batch, for ASCS and CS alike.
func TestWaveOfferPairsZeroAllocs(t *testing.T) {
	for _, schedule := range []bool{true, false} {
		ms := newSamplingMeanSketch(t, schedule)
		keys := make([]uint64, 512)
		xs := make([]float64, 512)
		ests := make([]float64, 512)
		for i := range keys {
			keys[i] = uint64(i % benchKeys)
			xs[i] = 1e6
		}
		ms.OfferPairs(keys, xs, ests) // builds the lazy wave scratch
		avg := testing.AllocsPerRun(50, func() {
			ms.OfferPairs(keys, xs, ests)
		})
		if avg != 0 {
			t.Fatalf("schedule=%v: wave OfferPairs allocates %.1f per batch; group scratch is not being reused", schedule, avg)
		}
	}
}

// BenchmarkIngestOfferRowsWave* is the row-wave path: one OfferRows
// call per upper triangle with m(m−1)/2 ≈ benchKeys pairs, so the
// engine expands base+partner keys internally into the same wave
// pipeline (ns/op is still ns per offered pair; x = left·right = 1e6
// matches the pair arms).
func BenchmarkIngestOfferRowsWaveASCS(b *testing.B) { benchIngestOfferRows(b, true) }
func BenchmarkIngestOfferRowsWaveCS(b *testing.B)   { benchIngestOfferRows(b, false) }

// rowTriangle builds the OfferRows arguments of an upper triangle whose
// pair keys enumerate exactly [0, m(m−1)/2) — the primed working set —
// with every product left·right = 1e6.
func rowTriangle(m int) (bases, ids []uint64, left, right []float64) {
	bases = make([]uint64, m-1)
	left = make([]float64, m-1)
	ids = make([]uint64, m)
	right = make([]float64, m)
	for i := range bases {
		bases[i] = uint64(pairs.RowBase(i, m))
		left[i] = 1000
	}
	for j := range ids {
		ids[j] = uint64(j)
		right[j] = 1000
	}
	return bases, ids, left, right
}

func benchIngestOfferRows(b *testing.B, schedule bool) {
	// Smallest m whose triangle covers the benchKeys working set.
	m := 2
	for m*(m-1)/2 < benchKeys {
		m++
	}
	p := m * (m - 1) / 2
	ms := newSamplingMeanSketchKeys(b, schedule, p)
	bases, ids, left, right := rowTriangle(m)
	ests := make([]float64, p)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += p {
		ms.OfferRows(bases, ids, left, right, ests)
	}
}

// TestRowWaveOfferZeroAllocs guards the row path's scratch discipline
// at the engine layer: once the wave scratch exists, steady-state
// OfferRow and OfferRows — key expansion included — allocate nothing,
// for ASCS and CS alike.
func TestRowWaveOfferZeroAllocs(t *testing.T) {
	const m = 46 // triangle of 1035 pairs ≈ the benchKeys working set
	p := m * (m - 1) / 2
	for _, schedule := range []bool{true, false} {
		ms := newSamplingMeanSketchKeys(t, schedule, p)
		bases, ids, left, right := rowTriangle(m)
		ests := make([]float64, p)
		partners := ids[1:]
		rowEsts := make([]float64, len(partners))
		ms.OfferRows(bases, ids, left, right, ests) // builds the lazy wave scratch
		if avg := testing.AllocsPerRun(50, func() {
			ms.OfferRows(bases, ids, left, right, ests)
		}); avg != 0 {
			t.Fatalf("schedule=%v: OfferRows allocates %.1f per triangle; row expansion scratch is not being reused", schedule, avg)
		}
		if avg := testing.AllocsPerRun(50, func() {
			ms.OfferRow(bases[0], partners, right[1:], rowEsts)
		}); avg != 0 {
			t.Fatalf("schedule=%v: OfferRow allocates %.1f per row", schedule, avg)
		}
	}
}

// TestShardIngestSteadyStateAllocs guards the serving-layer scratch
// discipline end to end: after warm-up, Manager.Ingest (pair
// enumeration, staging buffers, channel ship, worker apply through the
// wave group pipeline) must not allocate per call — the route staging
// freelist and the per-worker slot/estimate scratch are both on this
// path. A small allowance absorbs worker-goroutine noise picked up by
// AllocsPerRun's global counters.
func TestShardIngestSteadyStateAllocs(t *testing.T) {
	const d = 48
	rng := rand.New(rand.NewSource(5))
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	batch := []stream.Sample{stream.FromDense(row)}
	// The admission front door (shed bound check, governor pressure
	// read) sits on this same path and must not add allocations under
	// any policy. The queue is deep enough that the measurement loop
	// can outrun the workers without tripping the bound — the check
	// itself still runs on every call.
	for _, adm := range []shard.AdmissionPolicy{shard.AdmitBlock, shard.AdmitShed, shard.AdmitDegrade} {
		t.Run(string(adm), func(t *testing.T) {
			mgr, err := shard.New(shard.Config{
				Dim: d, Shards: 2, Admission: adm, QueueLen: 1 << 12,
				Engine: shard.EngineSpec{
					Kind:   shard.KindCS,
					Sketch: countsketch.Config{Tables: 5, Range: 1 << 12, Seed: 1},
					T:      1 << 30,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Close()
			for i := 0; i < 50; i++ {
				if _, _, err := mgr.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			}
			if err := mgr.Flush(); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(100, func() {
				if _, _, err := mgr.Ingest(batch); err != nil {
					t.Fatal(err)
				}
			})
			if avg > 3 {
				t.Fatalf("shard ingest steady state (admission=%s) allocates %.1f per call; staging/worker scratch is not being reused", adm, avg)
			}
		})
	}
}

// BenchmarkShardIngest measures the serving subsystem's ingest path
// (pair enumeration + routing + sharded sketch updates, no HTTP) per
// shard count. cmd/ascsload produces the end-to-end BENCH_server.json
// counterpart over real HTTP; shard speedups require as many cores.
func BenchmarkShardIngest(b *testing.B) {
	const d = 64 // 2016 pair offers per dense sample
	rng := rand.New(rand.NewSource(1))
	samples := make([]stream.Sample, 256)
	for i := range samples {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		samples[i] = stream.FromDense(row)
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			mgr, err := shard.New(shard.Config{
				Dim: d, Shards: shards,
				Engine: shard.EngineSpec{
					Kind:   shard.KindCS,
					Sketch: countsketch.Config{Tables: 5, Range: 1 << 13, Seed: 1},
					T:      b.N + 1,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for lo := 0; lo < b.N; lo += 64 {
				hi := lo + 64
				if hi > b.N {
					hi = b.N
				}
				batch := make([]stream.Sample, 0, hi-lo)
				for i := lo; i < hi; i++ {
					batch = append(batch, samples[i%256])
				}
				if _, _, err := mgr.Ingest(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := mgr.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(d*(d-1)/2), "offers/op")
		})
	}
}

func BenchmarkAblationPagh(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPagh(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
