package ascs

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/countsketch"
)

// MeanConfig configures a MeanSketch, the generic online sparse-mean
// estimator over uint64 keys (§3's abstract problem).
type MeanConfig struct {
	// Tables and Range are the sketch shape K × R. Required.
	Tables, Range int
	// Samples is the stream length T. Required.
	Samples int
	// Seed makes hashing deterministic (default 1).
	Seed uint64
	// Schedule, when non-zero, activates ASCS sampling with the given
	// schedule (solve one with SolveSchedule). Zero runs vanilla CS.
	Schedule Schedule
	// OneSided gates on μ̂ ≥ τ instead of |μ̂| ≥ τ (Algorithm 2 as
	// written; the default two-sided gate matches Theorems 1–2).
	OneSided bool
}

// MeanSketch estimates the per-key mean of a keyed stream in sub-linear
// memory. At each time step t = 1..T call BeginStep(t) once, then Offer
// each observed (key, value); Estimate answers μ̂ at any time.
type MeanSketch struct {
	cs   *countsketch.MeanSketch
	eng  *core.Engine
	kind string
}

// NewMeanSketch builds a vanilla-CS or ASCS mean estimator.
func NewMeanSketch(cfg MeanConfig) (*MeanSketch, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	skCfg := countsketch.Config{Tables: cfg.Tables, Range: cfg.Range, Seed: cfg.Seed}
	if cfg.Schedule == (Schedule{}) {
		cs, err := countsketch.NewMeanSketch(skCfg, cfg.Samples)
		if err != nil {
			return nil, err
		}
		return &MeanSketch{cs: cs, kind: "CS"}, nil
	}
	if cfg.Schedule.T != cfg.Samples {
		return nil, fmt.Errorf("ascs: schedule solved for T=%d but Samples=%d", cfg.Schedule.T, cfg.Samples)
	}
	eng, err := core.NewEngine(skCfg, cfg.Schedule.toCore(), !cfg.OneSided)
	if err != nil {
		return nil, err
	}
	return &MeanSketch{eng: eng, kind: "ASCS"}, nil
}

// BeginStep announces the 1-based time step for subsequent offers.
func (m *MeanSketch) BeginStep(t int) {
	if m.eng != nil {
		m.eng.BeginStep(t)
		return
	}
	m.cs.BeginStep(t)
}

// Offer presents one observation X_key^{(t)} = x.
func (m *MeanSketch) Offer(key uint64, x float64) {
	if m.eng != nil {
		m.eng.Offer(key, x)
		return
	}
	m.cs.Offer(key, x)
}

// Estimate returns the estimated mean of key (scaled by t/T before the
// stream completes).
func (m *MeanSketch) Estimate(key uint64) float64 {
	if m.eng != nil {
		return m.eng.Estimate(key)
	}
	return m.cs.Estimate(key)
}

// OfferEstimate is the fused fast path: Offer plus the post-offer
// estimate off a single hash of the key (the per-call pair hashes it up
// to three times). admitted is false only when the ASCS gate rejected
// the observation.
func (m *MeanSketch) OfferEstimate(key uint64, x float64) (est float64, admitted bool) {
	if m.eng != nil {
		return m.eng.OfferEstimate(key, x)
	}
	return m.cs.OfferEstimate(key, x)
}

// OfferPairs is the batch form of OfferEstimate for one time step: it
// offers every (keys[i], xs[i]) in order and, when ests is non-nil
// (length len(keys)), fills it with the post-offer estimates.
func (m *MeanSketch) OfferPairs(keys []uint64, xs []float64, ests []float64) {
	if m.eng != nil {
		m.eng.OfferPairs(keys, xs, ests)
		return
	}
	m.cs.OfferPairs(keys, xs, ests)
}

// OfferRow is the row-level form of OfferPairs: it offers partner j as
// the pair (rowBase+partners[j], xs[j]) in order — bit-identical to
// OfferPairs over caller-materialized keys (the add wraps mod 2^64;
// pairs row bases may be −1 as a uint64) — but lets the engine expand
// the keys internally with a vector add per wave group. ests is nil or
// len(partners), filled with the per-offer post-estimates.
func (m *MeanSketch) OfferRow(rowBase uint64, partners []uint64, xs []float64, ests []float64) {
	if m.eng != nil {
		m.eng.OfferRow(rowBase, partners, xs, ests)
		return
	}
	m.cs.OfferRow(rowBase, partners, xs, ests)
}

// OfferRows offers one sample's whole upper triangle: for each row i,
// every pair (bases[i]+ids[j], left[i]·right[j]) for j > i in row-major
// order, packing wave groups across row boundaries so short rows do not
// drain the pipeline. bases and left need only len(ids)−1 entries;
// right needs len(ids); ests is nil or m(m−1)/2 entries (m = len(ids))
// in the same order. This is the preferred ingest call for covariance
// streams — one call per sample, no caller-side pair enumeration.
func (m *MeanSketch) OfferRows(bases, ids []uint64, left, right []float64, ests []float64) {
	if m.eng != nil {
		m.eng.OfferRows(bases, ids, left, right, ests)
		return
	}
	m.cs.OfferRows(bases, ids, left, right, ests)
}

// SetWaveGroup sets the group size G of the wave-pipelined OfferPairs
// path of the underlying engine (g ≤ 1 selects the scalar per-pair
// loop; the default is the tuned group of internal/countsketch). State
// and estimates are bit-identical at any setting — the knob only
// controls how aggressively the batch path overlaps its table-cell
// cache misses. Not safe concurrently with offers.
func (m *MeanSketch) SetWaveGroup(g int) {
	if m.eng != nil {
		m.eng.SetWaveGroup(g)
		return
	}
	m.cs.SetWaveGroup(g)
}

// WaveGroup reports the wave group size in force (1 = scalar path).
func (m *MeanSketch) WaveGroup() int {
	if m.eng != nil {
		return m.eng.WaveGroup()
	}
	return m.cs.WaveGroup()
}

// Kind reports "CS" or "ASCS".
func (m *MeanSketch) Kind() string { return m.kind }

// MemoryBytes reports the table footprint.
func (m *MeanSketch) MemoryBytes() int {
	if m.eng != nil {
		return m.eng.Bytes()
	}
	return m.cs.Bytes()
}

// SampledFraction reports, for ASCS, the fraction of sampling-period
// offers that passed the gate (NaN for CS or before sampling).
func (m *MeanSketch) SampledFraction() float64 {
	if m.eng == nil {
		return math.NaN()
	}
	f, _, _ := m.eng.SampledFraction()
	return f
}

// WriteTo checkpoints the sketch (kind tag, schedule state if ASCS, and
// table contents); ReadMeanSketchFrom restores it for resumption or
// offline retrieval.
func (m *MeanSketch) WriteTo(w io.Writer) (int64, error) {
	var tag [1]byte
	if m.eng != nil {
		tag[0] = 1
	}
	n, err := w.Write(tag[:])
	total := int64(n)
	if err != nil {
		return total, err
	}
	var sn int64
	if m.eng != nil {
		sn, err = m.eng.WriteTo(w)
	} else {
		sn, err = m.cs.WriteTo(w)
	}
	return total + sn, err
}

// ReadMeanSketchFrom restores a MeanSketch written by WriteTo.
func ReadMeanSketchFrom(r io.Reader) (*MeanSketch, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, fmt.Errorf("ascs: reading sketch tag: %w", err)
	}
	switch tag[0] {
	case 0:
		cs, err := countsketch.ReadMeanSketchFrom(r)
		if err != nil {
			return nil, err
		}
		return &MeanSketch{cs: cs, kind: "CS"}, nil
	case 1:
		eng, err := core.ReadEngineFrom(r)
		if err != nil {
			return nil, err
		}
		return &MeanSketch{eng: eng, kind: "ASCS"}, nil
	default:
		return nil, fmt.Errorf("ascs: unknown sketch tag %d", tag[0])
	}
}
